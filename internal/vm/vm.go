// Package vm executes CARAT IR directly against the simulated machine. It
// plays the role of the hardware in the paper's evaluation: it runs the
// compiled (and possibly instrumented) module, charges a cycle cost per
// instruction, evaluates guards through the configured mechanism, invokes
// the runtime callbacks, and — in "traditional" mode — routes every data
// access through the TLB/pagewalker hierarchy instead.
//
// The VM intentionally does not model a data cache; the figures the
// benchmark harness reproduces are relative overheads between executions
// of identical instruction streams, which the paper's own methodology
// (normalized overhead vs. baseline) also relies on.
package vm

import (
	"fmt"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/mmpolicy"
	"carat/internal/obs"
	"carat/internal/runtime"
	"carat/internal/tlb"
)

// Mode selects the address-translation model.
type Mode int

// Execution modes.
const (
	// ModeCARAT runs with physical addressing: guards and tracking
	// callbacks (if compiled in) are live; there is no TLB.
	ModeCARAT Mode = iota
	// ModeTraditional runs with paging: every data access is translated
	// through the TLB hierarchy; guards must not be present.
	ModeTraditional
)

// Config configures a VM instance.
type Config struct {
	Mode      Mode
	GuardMech guard.Mechanism

	// StackBytes and HeapBytes size the process's stack and heap regions.
	StackBytes uint64
	HeapBytes  uint64

	// MemBytes sizes the machine's physical memory. Ignored when Kernel is
	// set.
	MemBytes uint64

	// Kernel, when set, loads the process into an existing machine instead
	// of creating a private one: caratd runs every tenant request as a
	// kernel.Process over one shared PhysMem. The shared kernel's tracer
	// and fault injector are left untouched (Trace/Fault below then apply
	// only to this VM's runtime), and the caller is responsible for
	// Release() after the run so the machine gets its pages back.
	Kernel *kernel.Kernel

	// Limiter, when set, meters every page grant of this process against a
	// quota (kernel.ErrQuota on breach). Used by caratd for per-tenant
	// max-live-allocation limits.
	Limiter kernel.Limiter

	// MaxCycles aborts the run once the modeled cycle clock passes the
	// budget (0 = no limit). Checked at safepoints, like MaxInstrs; the
	// caratd per-tenant "max cycles per request" quota.
	MaxCycles uint64

	// Paging, when set in traditional mode, receives page touches for the
	// Table 2 demand-paging accounting.
	Paging *kernel.PagingModel

	// Capsule lays the whole process out as ONE contiguous region (the
	// "dark capsule" linkage model of §3): code, globals, heap, and all
	// stacks (thread stacks are carved from the heap, as the paper
	// prescribes). Guards then always hit the single-region fast path.
	// The tradeoff is a single rwx permission for the whole process.
	Capsule bool

	// MaxInstrs aborts runaway programs (0 = no limit).
	MaxInstrs uint64

	// Predecode selects the predecoded execution engine: each function is
	// lowered once into a flat dispatch form (resolved register slots,
	// immediate constants, precomputed GEP strides, direct block indices).
	// Host-speed only: modeled results are byte-identical to the baseline
	// interpreter.
	Predecode bool

	// XCache puts a small per-thread direct-mapped guard/translation cache
	// in front of the guard evaluator (CARAT mode only). Hits replay the
	// recorded walk cost, so modeled cycles are byte-identical with the
	// cache on or off.
	XCache bool

	// Closure selects the third execution tier: each predecoded function is
	// lowered once more into chained Go closures — one superinstruction
	// closure per basic block, fusing compare+branch, GEP+load/store, and
	// guard-check+access pairs — with monomorphic inline caches on call
	// sites. The compiled form bakes global/function addresses and is
	// stamped with the region-set epoch; any epoch bump (page moves, grants,
	// forwarding windows) deopts in-flight activations back to the predecode
	// tier and recompiles on the next call. Implies the predecode lowering.
	// Host-speed only: modeled results are byte-identical to both other
	// tiers.
	Closure bool

	// Obs, when set, is the shared metrics registry for all layers of
	// this machine (kernel, runtime, tlb, vm). A private registry is
	// created when nil.
	Obs *obs.Registry

	// Trace, when set, receives simulated-cycle trace events from every
	// layer. nil disables tracing at zero cost.
	Trace *obs.Tracer

	// Sampler, when set, attaches the cycle-sampling profiler: the VM
	// registers one track and samples the running thread's guest stack
	// every Sampler.Interval model cycles at safepoints, folding the
	// guard/tracking/move/swap cycle counters into phase samples at the
	// same granularity. nil disables sampling; the hot-loop cost when
	// enabled is one comparison per safepoint. Sampling never perturbs
	// modeled results (it only reads the cycle counters).
	Sampler *obs.Sampler

	// Fault, when set, threads a seeded fault injector through the
	// kernel and runtime of this machine: moves may then be vetoed or
	// aborted mid-protocol (and rolled back), swaps may fail and retry.
	// nil disables injection at zero cost.
	Fault *fault.Injector

	// Incremental enables the bounded-pause move/swap protocol: instead of
	// one whole-operation world stop, the runtime patches in batches of
	// MoveBatch escapes between safepoint stops, forwarding racing accesses
	// through the guard-level forwarding window. Modeled cycles, memory
	// contents, and fault-injection draws are byte-identical to the legacy
	// protocol — only pause attribution changes.
	Incremental bool

	// MoveBatch is the incremental batch size (escape patches per stop
	// window). 0 means runtime.DefaultMoveBatch; values below
	// runtime.MinMoveBatch clamp up. Ignored unless Incremental is set.
	MoveBatch int

	// ArenaPages, when nonzero, carves a private contiguous page arena of
	// that size out of the (usually shared) kernel at load time and routes
	// every grant and move destination of this process into it. This is
	// what makes a process's physical layout — and therefore its guard
	// walks, translation-cache behavior, and memory digest — independent of
	// how other processes' allocations interleave with its own, the
	// precondition for the multi-core determinism contract. 0 keeps the
	// shared first-fit allocator (fine for a machine with one process).
	ArenaPages uint64
}

// DefaultConfig returns a reasonable configuration for running workloads.
func DefaultConfig() Config {
	return Config{
		Mode:       ModeCARAT,
		GuardMech:  guard.MechRange,
		StackBytes: 1 << 20, // 1 MB
		HeapBytes:  1 << 26, // 64 MB
		MemBytes:   1 << 28, // 256 MB
		MaxInstrs:  2_000_000_000,
		Predecode:  true,
		XCache:     true,
	}
}

// Fault is a protection violation: a guard rejected an access, or (in
// traditional mode) translation failed.
type Fault struct {
	Addr uint64
	Size uint64
	Perm guard.Perm
	Msg  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("vm: protection fault: %s [%#x,+%d) %s", f.Msg, f.Addr, f.Size, f.Perm)
}

// VM is a loaded process ready to run.
type VM struct {
	cfg   Config
	mod   *ir.Module
	kern  *kernel.Kernel
	proc  *kernel.Process
	rt    *runtime.Runtime
	hier  *tlb.Hierarchy
	eval  *guard.Evaluator
	arena *kernel.Arena // non-nil iff Config.ArenaPages was set

	// Layout.
	codeBase    uint64
	codeOf      map[*ir.Func]uint64
	funcAt      map[uint64]*ir.Func
	globalAddr  map[*ir.Global]uint64
	globalsBase uint64
	globalsLen  uint64

	// Predecoded-operand address tables: globalPhys[globalIdx[g]] and
	// funcPhys[funcIdx[f]] mirror globalAddr/codeOf as flat slices so the
	// predecoded engine resolves addresses by index. onMove rebuilds them,
	// keeping kernel-initiated moves visible.
	globalIdx  map[*ir.Global]int
	globalPhys []uint64
	funcIdx    map[*ir.Func]int
	funcPhys   []uint64

	heap  heap
	funcs map[*ir.Func]*funcInfo

	// Threads.
	sched *scheduler

	// Statistics.
	Instrs      uint64
	Cycles      uint64
	GuardChecks uint64
	Output      []int64

	// Closure-tier counters (host-side, never part of the model): blocks
	// lowered to superinstruction closures, deopt events (stale epoch at
	// entry, in-flight bailouts to the predecode tier, compile refusals),
	// and inline-cache hits/misses on closure call sites.
	closureBlocks   uint64
	closureDeopts   uint64
	closureICHits   uint64
	closureICMisses uint64

	// Prof attributes every charged cycle to a category and (for compute)
	// a function; obsReg backs the carat.vm.* metrics published by Run.
	Prof      *obs.CycleProfile
	obsReg    *obs.Registry
	tr        *obs.Tracer
	allocHist *obs.Histogram

	trackStart uint64 // rt.Stats.TrackingCycle at launch
	moveStart  uint64 // rt.Stats.MoveCycles at launch
	swapStart  uint64 // rt.Stats.SwapCycles at launch

	// track is this VM's stream in the attached cycle sampler (nil when
	// sampling is off). One track per VM, not per thread: the baton
	// discipline means v.Cycles is a single model clock all threads share,
	// so per-thread tracks would double-count intervals.
	track *obs.Track

	// Move injection (Figure 9): movePolicy runs at safepoints, paced on
	// retired instructions by the same rare-migration policy the paging
	// model uses (mmpolicy.RareMigration).
	movePolicy  func() error
	moveTrigger *mmpolicy.RareMigration
}

// SetMovePolicy arranges for fn to run at a safepoint every period retired
// instructions — the Figure 9 page-move injector. Call before Run.
func (v *VM) SetMovePolicy(period uint64, fn func() error) {
	v.movePolicy = fn
	v.moveTrigger = mmpolicy.NewRareMigration(period)
}

// SetIncrementalMoves switches the loaded VM's runtime to the bounded-pause
// incremental protocol with the given batch size (escape patches per stop
// window; 0 or negative disables, values below runtime.MinMoveBatch clamp
// up). Equivalent to Config.Incremental/MoveBatch, for tests and harnesses
// that flip modes after Load.
func (v *VM) SetIncrementalMoves(batch int) { v.rt.SetIncremental(batch) }

// Kernel returns the VM's kernel, for experiment harnesses that inject
// change requests.
func (v *VM) Kernel() *kernel.Kernel { return v.kern }

// Module returns the loaded module.
func (v *VM) Module() *ir.Module { return v.mod }

// Process returns the kernel process handle.
func (v *VM) Process() *kernel.Process { return v.proc }

// Runtime returns the CARAT runtime (nil only before Load).
func (v *VM) Runtime() *runtime.Runtime { return v.rt }

// Obs returns the metrics registry shared by this machine's layers.
func (v *VM) Obs() *obs.Registry { return v.obsReg }

// Hierarchy returns the TLB hierarchy (traditional mode only).
func (v *VM) Hierarchy() *tlb.Hierarchy { return v.hier }

// GlobalAddr returns the physical address assigned to global g.
func (v *VM) GlobalAddr(g *ir.Global) uint64 { return v.globalAddr[g] }

// ProcessBaseBytes models the fixed per-process memory a real Linux
// process carries regardless of the benchmark (loader image, libc data,
// runtime stub) — the paper's "Initial Pages" are in the same spirit.
const ProcessBaseBytes = 64 << 10

// ProgramFootprintBytes returns the program's own memory high-water mark:
// globals plus heap bytes ever bumped plus per-thread stack high-water
// plus the fixed process baseline. Figure 6 compares this against the
// runtime's tracking overhead.
func (v *VM) ProgramFootprintBytes() uint64 {
	total := uint64(ProcessBaseBytes) + v.globalsLen
	total += v.heap.brk - v.heap.base
	for _, t := range v.sched.threads {
		total += t.stackTop - t.minSP
	}
	return total
}

// funcInfo is the per-function "register file" layout: every SSA value
// gets a slot; pointer-typed slots are recorded so the move engine can
// patch in-register pointers.
type funcInfo struct {
	slotOf   map[ir.Value]int
	nSlots   int
	ptrSlots []int
	prof     *obs.FuncProfile // resolved once at load; hot-loop updates are plain adds
	pf       *pfunc           // predecoded body, built on first pcallFunc

	// Closure-tier state: cf is the compiled closure body (nil until the
	// first closure call, dropped again on deopt); noClosure marks a
	// function the closure compiler refused (undecodable shape) — it runs
	// on the predecode tier permanently.
	cf        *cfunc
	noClosure bool
}

func buildFuncInfo(f *ir.Func) *funcInfo {
	fi := &funcInfo{slotOf: make(map[ir.Value]int)}
	add := func(v ir.Value, isPtr bool) {
		fi.slotOf[v] = fi.nSlots
		if isPtr {
			fi.ptrSlots = append(fi.ptrSlots, fi.nSlots)
		}
		fi.nSlots++
	}
	for _, p := range f.Params {
		add(p, p.Typ.IsPtr())
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasResult() && in.Typ != ir.Void {
				add(in, in.Typ.IsPtr())
			}
		}
	}
	return fi
}

// Load places the module into a fresh simulated machine: code, globals
// (data+bss), stack, and heap regions are granted by the kernel; globals'
// initializers are copied; static allocations are registered with the
// runtime; and the entry thread is created but not started. This mirrors
// the load-time sequence of §2.2 ("Run-time").
func Load(mod *ir.Module, cfg Config) (*VM, error) {
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("vm: load: %w", err)
	}
	reg := cfg.Obs
	shared := cfg.Kernel != nil
	if reg == nil {
		if shared {
			reg = cfg.Kernel.Obs
		} else {
			reg = obs.NewRegistry()
		}
	}
	var k *kernel.Kernel
	if shared {
		k = cfg.Kernel
	} else {
		k = kernel.NewWith(cfg.MemBytes, reg)
	}
	proc := k.NewProcess()
	if cfg.Limiter != nil {
		proc.SetLimiter(cfg.Limiter)
	}
	// On a shared machine a failed load must hand its partial grants back.
	loaded := false
	var arena *kernel.Arena
	defer func() {
		if !loaded {
			_ = proc.ReleaseAll()
			if arena != nil {
				_ = k.ReleaseArena(arena)
			}
		}
	}()
	if cfg.ArenaPages > 0 {
		a, aerr := k.NewArena(cfg.ArenaPages)
		if aerr != nil {
			return nil, fmt.Errorf("vm: %w", aerr)
		}
		arena = a
		proc.SetArena(a)
	}
	v := &VM{
		cfg:        cfg,
		mod:        mod,
		kern:       k,
		proc:       proc,
		arena:      arena,
		codeOf:     make(map[*ir.Func]uint64),
		funcAt:     make(map[uint64]*ir.Func),
		globalAddr: make(map[*ir.Global]uint64),
		funcs:      make(map[*ir.Func]*funcInfo),
		Prof:       obs.NewCycleProfile(),
		obsReg:     reg,
		tr:         cfg.Trace,
		allocHist:  reg.Histogram("carat.vm.alloc_bytes"),
	}
	v.rt = runtime.NewWith(k.Mem, nil, reg)
	proc.Handler = v.rt
	v.rt.AddMoveListener(v.onMove)

	// Tracing: all layers share one tracer clocked by this VM's simulated
	// cycle counter; each run opens its own trace process lane.
	v.tr.SetClock(func() uint64 { return v.Cycles })
	v.tr.BeginProcess(mod.Name)
	if !shared {
		// A shared kernel's tracer/injector belong to its owner; wiring a
		// per-request tracer into it would race with concurrent loads.
		k.SetTracer(v.tr)
		k.SetInjector(cfg.Fault)
	}
	v.rt.SetTracer(v.tr)
	v.rt.SetInjector(cfg.Fault)

	for _, f := range mod.Funcs {
		fi := buildFuncInfo(f)
		fi.prof = v.Prof.Func(f.Name)
		v.funcs[f] = fi
	}

	// Layout sizes. Code is position-independent by construction (the
	// kernel can relocate it; function "addresses" are just identifiers
	// here); each function occupies a 64-byte slot.
	codeLen := uint64(len(mod.Funcs)*64 + 64)
	var globalsLen uint64
	for _, g := range mod.Globals {
		globalsLen += alignTo(uint64(g.Size()), 16)
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = DefaultConfig().HeapBytes
		v.cfg.HeapBytes = cfg.HeapBytes
	}

	var codeBase, globalsBase, heapBase uint64
	var err error
	if cfg.Capsule {
		// Dark-capsule layout (§3): one contiguous region holding code,
		// globals, and the heap (thread stacks are carved from the heap).
		total := alignTo(codeLen, 16) + globalsLen + cfg.HeapBytes
		base, gerr := proc.GrantRegion(total, guard.PermRead|guard.PermWrite|guard.PermExec)
		if gerr != nil {
			return nil, fmt.Errorf("vm: capsule region: %w", gerr)
		}
		codeBase = base
		globalsBase = base + alignTo(codeLen, 16)
		heapBase = globalsBase + globalsLen
	} else {
		codeBase, err = proc.GrantRegion(codeLen, guard.PermRead|guard.PermExec)
		if err != nil {
			return nil, fmt.Errorf("vm: code region: %w", err)
		}
		if globalsLen > 0 {
			globalsBase, err = proc.GrantRegion(globalsLen, guard.PermRW)
			if err != nil {
				return nil, fmt.Errorf("vm: globals region: %w", err)
			}
		}
		heapBase, err = proc.GrantRegion(cfg.HeapBytes, guard.PermRW)
		if err != nil {
			return nil, fmt.Errorf("vm: heap region: %w", err)
		}
	}

	v.codeBase = codeBase
	for i, f := range mod.Funcs {
		addr := codeBase + uint64(i+1)*64
		v.codeOf[f] = addr
		v.funcAt[addr] = f
	}
	if globalsLen > 0 {
		v.globalsBase, v.globalsLen = globalsBase, globalsLen
		off := globalsBase
		for _, g := range mod.Globals {
			v.globalAddr[g] = off
			if len(g.Init) > 0 {
				if err := k.Mem.WriteAt(off, g.Init); err != nil {
					return nil, err
				}
			}
			off += alignTo(uint64(g.Size()), 16)
		}
	}
	v.heap = newHeap(heapBase, cfg.HeapBytes)

	// Register static allocations with the runtime (load-time recording,
	// §4.1.2): code and each global.
	if err := v.rt.TrackStatic(codeBase, codeLen); err != nil {
		return nil, err
	}
	for _, g := range mod.Globals {
		if g.Size() > 0 {
			if err := v.rt.TrackStatic(v.globalAddr[g], uint64(g.Size())); err != nil {
				return nil, err
			}
		}
	}
	// Initial escapes: global initializers that contain pointers (their
	// offsets are declared in PtrInit). This is the load-time "patch of
	// all global pointers" moment.
	for _, g := range mod.Globals {
		for _, po := range g.PtrInit {
			loc := v.globalAddr[g] + uint64(po)
			v.rt.TrackEscape(loc, k.Mem.Load64(loc))
		}
	}

	// Traditional mode: build the paging hierarchy. Pages are mapped on
	// demand (identity), feeding the Table 2 paging model when attached.
	if cfg.Mode == ModeTraditional {
		v.hier = tlb.NewHierarchyWith(tlb.NewPageTable(), reg)
	}
	v.eval = guard.NewEvaluator(cfg.GuardMech, proc.Regions)

	// Flat address tables for the predecoded engine.
	v.globalIdx = make(map[*ir.Global]int, len(mod.Globals))
	v.globalPhys = make([]uint64, len(mod.Globals))
	for i, g := range mod.Globals {
		v.globalIdx[g] = i
		v.globalPhys[i] = v.globalAddr[g]
	}
	v.funcIdx = make(map[*ir.Func]int, len(mod.Funcs))
	v.funcPhys = make([]uint64, len(mod.Funcs))
	for i, f := range mod.Funcs {
		v.funcIdx[f] = i
		v.funcPhys[i] = v.codeOf[f]
	}

	// Guard/translation cache invalidation (two tiers; see DESIGN.md).
	// Precise range invalidation for map changes that leave the region set
	// alone: Fig-8 page moves and allocation-granularity moves arrive
	// through the move listener (onMove), swap in/out — including
	// mmpolicy-driven tiering — through the invalidation listener. Region-
	// set changes (grant/release/protect) shift search paths globally, so
	// the MMU notifier flushes everything; the per-entry epoch stamp backs
	// this up even if a path is missed.
	v.rt.AddInvalidationListener(func(base, length uint64) {
		v.invalidateXCaches(base, length)
	})
	proc.RegisterNotifier(kernel.NotifierFunc(func(ev kernel.MMUEvent) {
		switch ev.Kind {
		case kernel.EventInvalidateRange, kernel.EventAllocate:
			v.flushXCaches()
		}
	}))
	// The traditional-mode TLB hierarchy gets the same two-tier shootdown:
	// a PTE change invalidates the remapped pages, an unmap flushes them.
	if v.hier != nil {
		proc.RegisterNotifier(kernel.NotifierFunc(func(ev kernel.MMUEvent) {
			switch ev.Kind {
			case kernel.EventPTEChange, kernel.EventInvalidateRange:
				v.hier.InvalidateRange(ev.Base, ev.Len)
			}
		}))
	}

	v.sched = newScheduler(v)
	v.rt.SetWorld(v.sched)
	if cfg.Incremental {
		batch := cfg.MoveBatch
		if batch == 0 {
			batch = runtime.DefaultMoveBatch
		}
		v.rt.SetIncremental(batch)
	}
	v.trackStart = v.rt.Stats.TrackingCycle.Get()
	v.moveStart = v.rt.Stats.MoveCycles.Get()
	v.swapStart = v.rt.Stats.SwapCycles.Get()
	if cfg.Sampler != nil {
		v.track = cfg.Sampler.NewTrack()
	}
	loaded = true
	return v, nil
}

// Release frees every page region the process still holds, returning the
// memory (and any quota reservations) to the machine, and returns the
// process's arena (if any) too. Required after each run on a shared
// kernel; a no-op on the second call.
func (v *VM) Release() error {
	if err := v.proc.ReleaseAll(); err != nil {
		return err
	}
	if v.arena != nil {
		if err := v.kern.ReleaseArena(v.arena); err != nil {
			return err
		}
		v.arena = nil
	}
	return nil
}

// Arena returns the process's private page arena, or nil when the VM was
// loaded without Config.ArenaPages.
func (v *VM) Arena() *kernel.Arena { return v.arena }

// Suspend parks this VM's guest execution at its next safepoint and
// returns once it is parked (or before the run has started — the run then
// waits). The returned resume function releases the suspension and is
// idempotent. Suspensions nest: the guest resumes when the last one is
// released. While suspended, the caller owns the process's world — it may
// request moves, protection changes, or swaps against this process from
// its own goroutine without racing guest execution, which is the only
// sanctioned way to drive a foreign process's memory from outside its
// safepoints. Must not be called from this VM's own guest execution
// (a self-suspension would wait for its own park and deadlock); guests
// use move policies instead.
func (v *VM) Suspend() (resume func()) { return v.sched.suspend() }

// foldPhaseSamples converts the non-exec cycle counters accumulated since
// Load into profiler samples. Counter baselines (trackStart etc.) keep a
// shared registry's carry-over from earlier runs out of this VM's track.
// Called at sampling points and once at the end of Run, so per-phase
// sample totals track the counters within one interval.
func (v *VM) foldPhaseSamples() {
	v.track.FoldPhase("guard", v.eval.Cycles)
	v.track.FoldPhase("escape-flush", v.rt.Stats.TrackingCycle.Get()-v.trackStart)
	v.track.FoldPhase("move", v.rt.Stats.MoveCycles.Get()-v.moveStart)
	v.track.FoldPhase("swap", v.rt.Stats.SwapCycles.Get()-v.swapStart)
}

// invalidateXCaches drops stale entries covering [base, base+length) from
// every thread's guard/translation cache. Runs with the world stopped.
func (v *VM) invalidateXCaches(base, length uint64) {
	if v.sched == nil {
		return
	}
	for _, t := range v.sched.threads {
		if t.xc != nil {
			t.xc.InvalidateRange(base, length)
		}
	}
}

// flushXCaches drops every cached entry (region-set change: search paths
// shifted globally).
func (v *VM) flushXCaches() {
	if v.sched == nil {
		return
	}
	for _, t := range v.sched.threads {
		if t.xc != nil {
			t.xc.InvalidateAll()
		}
	}
}

// onMove rebases the VM's own bookkeeping after the kernel moved
// [src, src+length) to dst: heap metadata, global addresses, and the code
// map. Thread register slots are patched separately through the World
// interface.
func (v *VM) onMove(src, dst, length uint64) {
	reb := func(a uint64) uint64 {
		if a >= src && a < src+length {
			return a - src + dst
		}
		return a
	}
	v.heap.rebase(src, dst, length)
	for g, a := range v.globalAddr {
		if na := reb(a); na != a {
			v.globalAddr[g] = na
		}
	}
	if nb := reb(v.globalsBase); nb != v.globalsBase {
		v.globalsBase = nb
	}
	if nc := reb(v.codeBase); nc != v.codeBase {
		v.codeBase = nc
		newAt := make(map[uint64]*ir.Func, len(v.funcAt))
		for a, f := range v.funcAt {
			na := reb(a)
			newAt[na] = f
			v.codeOf[f] = na
		}
		v.funcAt = newAt
	}
	v.sched.rebaseStacks(src, dst, length)
	// Refresh the predecoded engine's flat address tables.
	for g, i := range v.globalIdx {
		v.globalPhys[i] = v.globalAddr[g]
	}
	for f, i := range v.funcIdx {
		v.funcPhys[i] = v.codeOf[f]
	}
	// Both the vacated and the newly-populated ranges are stale in the
	// per-thread guard caches.
	v.invalidateXCaches(src, length)
	v.invalidateXCaches(dst, length)
}

// Run executes @main to completion and returns its result (0 for void
// mains). Tracking cycles accumulated by the runtime are folded into the
// VM cycle count on return.
func (v *VM) Run() (int64, error) {
	main := v.mod.Func("main")
	if main == nil || main.IsDecl() {
		return 0, fmt.Errorf("vm: module has no @main")
	}
	v.sched.beginRun()
	defer v.sched.endRun()
	ret, err := v.sched.runMain(main)
	if v.track != nil {
		// Final exec catch-up at the pre-fold clock (the fold-ins below
		// belong to other phases), then settle every phase's remainder.
		v.track.Sample(v.Cycles, func() string { return "main" })
		v.foldPhaseSamples()
	}
	tracking := v.rt.Stats.TrackingCycle.Get() - v.trackStart
	v.Cycles += tracking
	v.Prof.Cat[obs.CatTracking] += tracking
	v.Cycles += v.eval.Cycles
	v.Prof.Cat[obs.CatGuard] += v.eval.Cycles
	v.GuardChecks = v.eval.Checks
	for _, bd := range v.rt.MoveStats {
		v.Cycles += bd.TotalCycles()
		v.Prof.Cat[obs.CatProtocol] += bd.TotalCycles()
	}
	v.publishMetrics()
	return ret, err
}

// publishMetrics adds this run's totals into the carat.vm.* namespace.
// Counters accumulate, so a bench sweep sharing one registry across
// sequential runs sees corpus-wide totals.
func (v *VM) publishMetrics() {
	v.obsReg.Counter("carat.vm.instrs").Add(v.Instrs)
	v.obsReg.Counter("carat.vm.guard_checks").Add(v.GuardChecks)
	v.obsReg.Counter("carat.vm.guard_faults").Add(v.eval.Faults)
	if v.cfg.XCache && v.cfg.Mode == ModeCARAT {
		hits, misses, invs := v.XCacheStats()
		v.obsReg.Counter("carat.vm.xcache.hits").Add(hits)
		v.obsReg.Counter("carat.vm.xcache.misses").Add(misses)
		v.obsReg.Counter("carat.vm.xcache.invalidations").Add(invs)
	}
	if v.cfg.Closure {
		v.obsReg.Counter("carat.vm.closure.blocks").Add(v.closureBlocks)
		v.obsReg.Counter("carat.vm.closure.deopts").Add(v.closureDeopts)
		v.obsReg.Counter("carat.vm.closure.ic_hits").Add(v.closureICHits)
		v.obsReg.Counter("carat.vm.closure.ic_misses").Add(v.closureICMisses)
	}
	v.Prof.PublishTo(v.obsReg, "carat.vm")
}

// ClosureStats returns the closure-tier counters: basic blocks lowered to
// superinstruction closures, deopt events, and call-site inline-cache
// hits/misses. All zero unless Config.Closure is set.
func (v *VM) ClosureStats() (blocks, deopts, icHits, icMisses uint64) {
	return v.closureBlocks, v.closureDeopts, v.closureICHits, v.closureICMisses
}

// XCacheStats sums the per-thread guard/translation cache counters.
func (v *VM) XCacheStats() (hits, misses, invalidations uint64) {
	for _, t := range v.sched.threads {
		if t.xc != nil {
			hits += t.xc.Hits
			misses += t.xc.Misses
			invalidations += t.xc.Invalidations
		}
	}
	return hits, misses, invalidations
}

// InjectWorstCaseMove performs one kernel-initiated move of the page
// holding the most-escaped allocation (the Figure 9 workload), callable
// from a MovePolicy hook while the program runs.
func (v *VM) InjectWorstCaseMove() error {
	page, ok := v.rt.WorstCasePage()
	if !ok {
		return fmt.Errorf("vm: no allocations to move")
	}
	_, err := v.proc.RequestMove(page, 1)
	return err
}

// SwapOutAllocation evicts the heap allocation based at base into a swap
// slot (§2.2's page-unavailability mechanism at allocation granularity):
// its escaped pointers become non-canonical poison addresses, and the next
// guarded use transparently swaps it back in. The vacated heap block is
// returned to the allocator.
func (v *VM) SwapOutAllocation(base uint64) (uint64, error) {
	slot, err := v.rt.SwapOut(base)
	if err != nil {
		return 0, err
	}
	if v.heap.live(base) {
		if err := v.heap.free(base); err != nil {
			return 0, err
		}
	}
	return slot, nil
}

// InjectWorstCaseAllocationMove relocates the most-escaped heap allocation
// at allocation granularity (§6 "Allocation Granularity"): no page
// expansion, no page-semantics negotiation — the ablation the paper
// predicts removes ~95% of the move cost.
func (v *VM) InjectWorstCaseAllocationMove() error {
	base, length, ok := v.rt.WorstCaseHeapAllocation(v.heap.base, v.heap.end)
	if !ok {
		return fmt.Errorf("vm: no heap allocations to move")
	}
	cls := sizeClass(length)
	dst := v.heap.alloc(length)
	if dst == 0 {
		return fmt.Errorf("vm: heap exhausted during allocation move")
	}
	if _, err := v.rt.MoveAllocationTo(base, dst); err != nil {
		return err
	}
	// The move listener rebased the heap's metadata for base onto dst;
	// the vacated block becomes reusable free space.
	v.heap.donate(base, cls)
	return nil
}

func alignTo(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
