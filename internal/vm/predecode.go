package vm

import (
	"fmt"
	"math"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/obs"
	"carat/internal/passes"
	"carat/internal/runtime"
)

// The predecoded execution engine. callFunc interprets *ir.Instr values
// directly: every operand read is an interface type switch plus (for SSA
// values) a map lookup, every instruction execution allocates a `set`
// closure, and every taken branch re-discovers the incoming phi edge by
// scanning phi.Preds. None of that work depends on runtime state, so
// pcallFunc lowers each function once — on its first call — into a flat
// array-of-structs form with resolved register slots, immediate constants,
// precomputed GEP strides, direct successor-block indices, and per-edge phi
// copy lists. The dispatch loop then runs on integer indices only.
//
// The lowering is host-speed only: instruction counts, modeled cycles, the
// cycle profile, guard evaluator state, and runtime callback order are
// byte-identical with the baseline interpreter (the engine-parity
// differential tests in predecode_test.go pin this).

// poperand kinds.
const (
	pkImm    = iota // immediate: imm holds the value (floats pre-bitcast)
	pkSlot          // frame register: idx is the slot
	pkGlobal        // idx into VM.globalPhys (live across moves)
	pkFunc          // idx into VM.funcPhys (live across moves)
)

// poperand is a resolved operand: no interface dispatch, no map lookups.
type poperand struct {
	kind uint8
	idx  int32
	imm  uint64
}

// pgepStep is one dynamic GEP index with its precomputed byte stride.
type pgepStep struct {
	op     poperand
	stride int64
}

// pcopy is one phi assignment attached to a CFG edge: when the edge is
// taken, regs[dst] receives the value of src (all srcs are read before any
// dst is written, preserving parallel-phi semantics).
type pcopy struct {
	dst int32
	src poperand
}

// pinstr is one predecoded instruction. A single struct covers every op;
// the op field selects which subset of the fields is meaningful. raw always
// points at the source instruction for cold paths (faults, error messages,
// and the execInstr fallback).
type pinstr struct {
	op       ir.Op
	fallback bool // true: execute raw via execInstr (rare, exotic shapes)
	cost     uint8
	dst      int32 // result slot, -1 when the op produces no value

	a, b, c poperand // up to three scalar operands

	bits     uint8   // result int width (binops, casts, FPToSI)
	srcBits  uint8   // source int width (ZExt/SExt, unsigned ICmp mask)
	maskCmp  bool    // ICmp: unsigned predicate needs width masking
	pred     ir.Pred // ICmp/FCmp
	elemSize uint64  // Alloca element size
	width    uint8   // Load/Store access width (1/2/4/8)
	signed   bool    // Load: sign-extend an int element
	kind     ir.GuardKind
	callee   *ir.Func
	args     []poperand // Call arguments

	gepConst uint64 // folded constant GEP offset
	gepSteps []pgepStep

	succ0, succ1     int32   // Br/CondBr successor block indices
	copies0, copies1 []pcopy // phi copies for the taken edge

	raw *ir.Instr
}

// pblock is one predecoded basic block: its non-phi instructions. Phis are
// compiled away into the predecessors' edge copy lists.
type pblock struct {
	code []pinstr
}

// pfunc is a predecoded function body.
type pfunc struct {
	blocks  []pblock
	maxPhis int // widest phi set of any block, sizes the copy scratch
}

// predecodeFunc lowers f once. Called on the first pcallFunc of f; the
// baton scheduling discipline means at most one program thread executes at
// a time, so no locking is needed.
func (v *VM) predecodeFunc(f *ir.Func, fi *funcInfo) *pfunc {
	blockIdx := make(map[*ir.Block]int32, len(f.Blocks))
	for i, b := range f.Blocks {
		blockIdx[b] = int32(i)
	}
	pf := &pfunc{blocks: make([]pblock, len(f.Blocks))}

	// Edge copies: for the edge prev->b, the phis of b select the operand
	// whose Preds entry is prev.
	edgeCopies := func(prev, b *ir.Block) []pcopy {
		phis := b.Phis()
		if len(phis) == 0 {
			return nil
		}
		if len(phis) > pf.maxPhis {
			pf.maxPhis = len(phis)
		}
		copies := make([]pcopy, len(phis))
		for i, phi := range phis {
			found := false
			for j, pb := range phi.Preds {
				if pb == prev {
					copies[i] = pcopy{dst: int32(fi.slotOf[phi]), src: v.pdecodeOperand(fi, phi.Args[j])}
					found = true
					break
				}
			}
			if !found {
				// Verified modules always have the edge; mirror the
				// baseline's runtime error through a fallback phi.
				copies[i] = pcopy{dst: int32(fi.slotOf[phi]), src: poperand{kind: pkImm}}
			}
		}
		return copies
	}

	for bi, b := range f.Blocks {
		phis := b.Phis()
		code := make([]pinstr, 0, len(b.Instrs)-len(phis))
		for _, in := range b.Instrs[len(phis):] {
			pi := v.pdecodeInstr(fi, in)
			if in.Op == ir.OpBr || in.Op == ir.OpCondBr {
				pi.succ0 = blockIdx[in.Succs[0]]
				pi.copies0 = edgeCopies(b, in.Succs[0])
				if in.Op == ir.OpCondBr {
					pi.succ1 = blockIdx[in.Succs[1]]
					pi.copies1 = edgeCopies(b, in.Succs[1])
				}
			}
			code = append(code, pi)
		}
		pf.blocks[bi] = pblock{code: code}
	}
	return pf
}

// pdecodeOperand resolves one ir.Value into a poperand.
func (v *VM) pdecodeOperand(fi *funcInfo, x ir.Value) poperand {
	switch c := x.(type) {
	case *ir.Const:
		if c.Typ.IsFloat() {
			return poperand{kind: pkImm, imm: math.Float64bits(c.Float)}
		}
		return poperand{kind: pkImm, imm: uint64(c.Int)}
	case *ir.Global:
		return poperand{kind: pkGlobal, idx: int32(v.globalIdx[c])}
	case *ir.Func:
		return poperand{kind: pkFunc, idx: int32(v.funcIdx[c])}
	default:
		return poperand{kind: pkSlot, idx: int32(fi.slotOf[x])}
	}
}

// pval reads a resolved operand. The pkGlobal/pkFunc indirection through
// the phys tables (rebuilt by onMove) keeps kernel-initiated moves visible,
// matching the baseline's live map lookups.
func (v *VM) pval(fr *frame, p poperand) uint64 {
	switch p.kind {
	case pkImm:
		return p.imm
	case pkSlot:
		return fr.regs[p.idx]
	case pkGlobal:
		return v.globalPhys[p.idx]
	default:
		return v.funcPhys[p.idx]
	}
}

// pdecodeInstr lowers one non-phi, possibly-terminator instruction.
func (v *VM) pdecodeInstr(fi *funcInfo, in *ir.Instr) pinstr {
	pi := pinstr{op: in.Op, cost: uint8(opCycles[in.Op]), dst: -1, raw: in}
	if in.Op.HasResult() && in.Typ != ir.Void {
		pi.dst = int32(fi.slotOf[in])
	}
	opnd := func(i int) poperand { return v.pdecodeOperand(fi, in.Args[i]) }

	switch {
	case in.Op.IsBinary():
		pi.a, pi.b = opnd(0), opnd(1)
		pi.bits = uint8(in.Typ.Bits)

	case in.Op == ir.OpICmp:
		pi.a, pi.b = opnd(0), opnd(1)
		pi.pred = in.Pred
		if t := in.Args[0].Type(); in.Pred >= ir.PredULT && t.IsInt() && t.Bits < 64 {
			pi.maskCmp = true
			pi.srcBits = uint8(t.Bits)
		}

	case in.Op == ir.OpFCmp:
		pi.a, pi.b = opnd(0), opnd(1)
		pi.pred = in.Pred

	case in.Op.IsCast():
		pi.a = opnd(0)
		pi.bits = uint8(in.Typ.Bits)
		pi.srcBits = uint8(in.Args[0].Type().Bits)

	case in.Op == ir.OpAlloca:
		pi.a = opnd(0)
		pi.elemSize = uint64(in.Elem.Size())

	case in.Op == ir.OpLoad:
		pi.a = opnd(0)
		n := in.Elem.Size()
		if n != 1 && n != 2 && n != 4 && n != 8 {
			pi.fallback = true // keep the baseline's exec-time panic path
			break
		}
		pi.width = uint8(n)
		pi.signed = in.Elem.IsInt()
		pi.srcBits = uint8(in.Elem.Bits)

	case in.Op == ir.OpStore:
		pi.a, pi.b = opnd(0), opnd(1)
		n := in.Args[0].Type().Size()
		if n != 1 && n != 2 && n != 4 && n != 8 {
			pi.fallback = true
			break
		}
		pi.width = uint8(n)

	case in.Op == ir.OpGEP:
		pi.a = opnd(0)
		typ := in.Elem
		ok := true
		for i, idxV := range in.Args[1:] {
			if i == 0 {
				pi.gepAdd(v, fi, idxV, typ.Size())
				continue
			}
			switch typ.Kind {
			case ir.ArrayKind:
				typ = typ.Elem
				pi.gepAdd(v, fi, idxV, typ.Size())
			case ir.StructKind:
				c, isConst := idxV.(*ir.Const)
				if !isConst {
					ok = false // dynamic struct index: type walk needs the value
					break
				}
				pi.gepConst += uint64(typ.FieldOffset(int(c.Int)))
				typ = typ.Fields[c.Int]
			default:
				pi.gepAdd(v, fi, idxV, typ.Size())
			}
			if !ok {
				break
			}
		}
		if !ok {
			pi.fallback = true
		}

	case in.Op == ir.OpSelect:
		pi.a, pi.b, pi.c = opnd(0), opnd(1), opnd(2)

	case in.Op == ir.OpGuard:
		pi.kind = in.Kind
		pi.a = opnd(0)
		if len(in.Args) > 1 {
			pi.b = opnd(1)
		}

	case in.Op == ir.OpCall:
		pi.callee = in.Callee
		pi.args = make([]poperand, len(in.Args))
		for i := range in.Args {
			pi.args[i] = opnd(i)
		}

	case in.Op == ir.OpCondBr:
		pi.a = opnd(0)

	case in.Op == ir.OpRet:
		if len(in.Args) == 1 {
			pi.a = opnd(0)
			pi.args = []poperand{pi.a} // non-nil marks "has return value"
		}

	case in.Op == ir.OpBr, in.Op == ir.OpUnreachable:
		// nothing beyond successors/raw

	default:
		pi.fallback = true
	}
	return pi
}

// gepAdd folds a constant index into gepConst or appends a dynamic step.
func (pi *pinstr) gepAdd(v *VM, fi *funcInfo, idxV ir.Value, stride int64) {
	if c, isConst := idxV.(*ir.Const); isConst {
		pi.gepConst += uint64(c.Int * stride)
		return
	}
	pi.gepSteps = append(pi.gepSteps, pgepStep{op: v.pdecodeOperand(fi, idxV), stride: stride})
}

// call dispatches one function call to the engine the config selects.
// Builtins always take the declared path.
func (v *VM) call(t *thread, f *ir.Func, args []uint64) (uint64, error) {
	if f.IsDecl() {
		return v.callBuiltin(t, f, args)
	}
	if v.cfg.Closure {
		return v.ccallFunc(t, f, args)
	}
	if v.cfg.Predecode {
		return v.pcallFunc(t, f, args)
	}
	return v.callFunc(t, f, args)
}

// pcallFunc interprets one activation through the predecoded form. Control
// flow, accounting, safepoint placement, and phi timing mirror callFunc
// exactly: the safepoint at a block's head runs BEFORE that block's phi
// copies are applied, so a move injected at the safepoint patches the
// frame slots the copies then read — the same order the baseline gives.
func (v *VM) pcallFunc(t *thread, f *ir.Func, args []uint64) (uint64, error) {
	fi := v.funcs[f]
	pf := fi.pf
	if pf == nil {
		pf = v.predecodeFunc(f, fi)
		fi.pf = pf
	}
	fi.prof.Calls++
	fr := &frame{fn: f, fi: fi, regs: make([]uint64, fi.nSlots), spSave: t.sp}
	copy(fr.regs, args) // params occupy slots 0..len(Params)-1 in order
	t.frames = append(t.frames, fr)
	defer func() {
		t.frames = t.frames[:len(t.frames)-1]
		if t.sp < fr.spSave {
			v.rt.UntrackStackRange(t.sp, fr.spSave)
		}
		t.sp = fr.spSave
	}()
	if len(t.frames) > 10000 {
		return 0, fmt.Errorf("vm: call stack overflow in @%s", f.Name)
	}
	return v.pexecFrom(t, fr, pf, 0, 0, nil, false)
}

// pexecFrom runs frame fr through the predecoded engine starting at
// instruction ci0 of block bi with the given phi copies still pending.
// pcallFunc enters at (0, 0); the closure tier's deopt paths enter at a
// block head with skipSafepoint set (the closure block already took that
// head's safepoint) or mid-block after a call step. The frame is the
// caller's: deopting transfers an in-flight activation between tiers
// without disturbing stack or profiling bookkeeping.
func (v *VM) pexecFrom(t *thread, fr *frame, pf *pfunc, bi int32, ci0 int, pending []pcopy, skipSafepoint bool) (uint64, error) {
	f := fr.fn
	fi := fr.fi
	var tmp []uint64
	if pf.maxPhis > 0 {
		tmp = make([]uint64, pf.maxPhis)
	}
	ci := ci0

blockLoop:
	for {
		if skipSafepoint {
			skipSafepoint = false
		} else if err := t.safepoint(); err != nil {
			return 0, err
		}
		if len(pending) > 0 {
			for i := range pending {
				tmp[i] = v.pval(fr, pending[i].src)
			}
			for i := range pending {
				fr.regs[pending[i].dst] = tmp[i]
			}
			v.Instrs += uint64(len(pending))
			fi.prof.Instrs += uint64(len(pending))
			pending = nil
		}
		code := pf.blocks[bi].code
		for ; ci < len(code); ci++ {
			in := &code[ci]
			v.Instrs++
			c := uint64(in.cost)
			v.Cycles += c
			v.Prof.Cat[obs.CatCompute] += c
			fi.prof.Instrs++
			fi.prof.Cycles += c

			if in.fallback {
				if err := v.execInstr(t, fr, in.raw); err != nil {
					return 0, err
				}
				continue
			}

			switch in.op {
			case ir.OpBr:
				pending, bi, ci = in.copies0, in.succ0, 0
				continue blockLoop

			case ir.OpCondBr:
				if v.pval(fr, in.a)&1 != 0 {
					pending, bi, ci = in.copies0, in.succ0, 0
				} else {
					pending, bi, ci = in.copies1, in.succ1, 0
				}
				continue blockLoop

			case ir.OpRet:
				if in.args != nil {
					return v.pval(fr, in.a), nil
				}
				return 0, nil

			case ir.OpUnreachable:
				return 0, fmt.Errorf("vm: reached unreachable in @%s", f.Name)

			case ir.OpICmp:
				a, b := v.pval(fr, in.a), v.pval(fr, in.b)
				if in.maskCmp {
					a, b = maskToWidth(a, int(in.srcBits)), maskToWidth(b, int(in.srcBits))
				}
				fr.regs[in.dst] = boolBit(icmp(in.pred, a, b))

			case ir.OpFCmp:
				x := math.Float64frombits(v.pval(fr, in.a))
				y := math.Float64frombits(v.pval(fr, in.b))
				fr.regs[in.dst] = boolBit(fcmp(in.pred, x, y))

			case ir.OpTrunc:
				fr.regs[in.dst] = uint64(signExtend(v.pval(fr, in.a), int(in.bits)))
			case ir.OpZExt:
				fr.regs[in.dst] = maskToWidth(v.pval(fr, in.a), int(in.srcBits))
			case ir.OpSExt:
				fr.regs[in.dst] = uint64(signExtend(v.pval(fr, in.a), int(in.srcBits)))
			case ir.OpPtrToInt, ir.OpIntToPtr:
				fr.regs[in.dst] = v.pval(fr, in.a)
			case ir.OpSIToFP:
				fr.regs[in.dst] = math.Float64bits(float64(int64(v.pval(fr, in.a))))
			case ir.OpFPToSI:
				fr.regs[in.dst] = maskSigned(int64(math.Float64frombits(v.pval(fr, in.a))), int(in.bits))

			case ir.OpAlloca:
				count := int64(v.pval(fr, in.a))
				size := alignTo(uint64(count)*in.elemSize, heapAlign)
				if t.sp < t.stackBase+size {
					return 0, &Fault{Addr: t.sp - size, Size: size, Perm: guard.PermRW, Msg: "stack overflow"}
				}
				t.sp -= size
				if t.sp < t.minSP {
					t.minSP = t.sp
				}
				if in.dst >= 0 {
					fr.regs[in.dst] = t.sp
				}

			case ir.OpLoad:
				paddr, err := v.pdataAddr(fr, in.a, uint64(in.width), guard.PermRead)
				if err != nil {
					return 0, err
				}
				raw := v.kern.Mem.LoadN(paddr, int(in.width))
				if in.signed {
					raw = uint64(signExtend(raw, int(in.srcBits)))
				}
				if in.dst >= 0 {
					fr.regs[in.dst] = raw
				}

			case ir.OpStore:
				val := v.pval(fr, in.a)
				paddr, err := v.pdataAddr(fr, in.b, uint64(in.width), guard.PermWrite)
				if err != nil {
					return 0, err
				}
				v.kern.Mem.StoreN(paddr, val, int(in.width))

			case ir.OpGEP:
				addr := v.pval(fr, in.a) + in.gepConst
				for si := range in.gepSteps {
					st := &in.gepSteps[si]
					addr += uint64(int64(v.pval(fr, st.op)) * st.stride)
				}
				if in.dst >= 0 {
					fr.regs[in.dst] = addr
				}

			case ir.OpSelect:
				var r uint64
				if v.pval(fr, in.a)&1 != 0 {
					r = v.pval(fr, in.b)
				} else {
					r = v.pval(fr, in.c)
				}
				if in.dst >= 0 {
					fr.regs[in.dst] = r
				}

			case ir.OpGuard:
				if err := v.pexecGuard(t, fr, in); err != nil {
					return 0, err
				}

			case ir.OpCall:
				cargs := make([]uint64, len(in.args))
				for i := range in.args {
					cargs[i] = v.pval(fr, in.args[i])
				}
				ret, err := v.call(t, in.callee, cargs)
				if err != nil {
					return 0, err
				}
				if in.dst >= 0 {
					fr.regs[in.dst] = ret
				}

			default:
				// Binops: float ops carry their own opcode range.
				a, b := v.pval(fr, in.a), v.pval(fr, in.b)
				if in.op >= ir.OpFAdd && in.op <= ir.OpFDiv {
					x, y := math.Float64frombits(a), math.Float64frombits(b)
					var r float64
					switch in.op {
					case ir.OpFAdd:
						r = x + y
					case ir.OpFSub:
						r = x - y
					case ir.OpFMul:
						r = x * y
					case ir.OpFDiv:
						r = x / y
					}
					fr.regs[in.dst] = math.Float64bits(r)
					continue
				}
				r, err := intBinop(in.op, a, b, int(in.bits))
				if err != nil {
					return 0, fmt.Errorf("vm: @%s: %s: %w", fr.fn.Name, in.raw, err)
				}
				if in.dst >= 0 {
					fr.regs[in.dst] = r
				}
			}
		}
		// A verified block always ends in a terminator; reaching here means
		// the module changed under us.
		return 0, fmt.Errorf("vm: block without terminator in @%s", f.Name)
	}
}

// pdataAddr is dataAddr over a predecoded operand: translate with one
// swap-in retry on a poisoned pointer.
func (v *VM) pdataAddr(fr *frame, opnd poperand, size uint64, perm guard.Perm) (uint64, error) {
	addr := v.pval(fr, opnd)
	paddr, err := v.translate(addr, size, perm)
	if err == nil {
		return paddr, nil
	}
	if slot, _, ok := runtime.DecodeSwapPoison(addr); ok {
		if serr := v.swapIn(slot); serr != nil {
			return 0, &Fault{Addr: addr, Size: size, Perm: perm, Msg: "swap-in failed: " + serr.Error()}
		}
		return v.translate(v.pval(fr, opnd), size, perm)
	}
	return 0, err
}

// pexecGuard evaluates a predecoded guard: the hot path is one xcache probe
// (or one evaluator walk); misses and faults share the baseline's cold
// path.
func (v *VM) pexecGuard(t *thread, fr *frame, in *pinstr) error {
	var addr, size uint64
	var perm guard.Perm
	switch in.kind {
	case ir.GuardLoad, ir.GuardRange:
		addr, size, perm = v.pval(fr, in.a), v.pval(fr, in.b), guard.PermRead
	case ir.GuardStore, ir.GuardRangeStore:
		addr, size, perm = v.pval(fr, in.a), v.pval(fr, in.b), guard.PermWrite
	case ir.GuardCall:
		foot := v.pval(fr, in.b)
		if foot == 0 {
			foot = passes.DefaultStackFootprint
		}
		addr, size, perm = t.sp-foot, foot, guard.PermRW
	}
	if int64(size) <= 0 {
		return nil
	}
	if v.checkGuard(t, addr, size, perm) {
		return nil
	}
	return v.guardMiss(fr, in.raw, addr, size, perm, func() uint64 { return v.pval(fr, in.a) })
}
