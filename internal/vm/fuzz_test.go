package vm

import (
	"fmt"
	"testing"

	"carat/internal/guard"
	"carat/internal/passes"
)

// Native Go fuzz targets over the differential-fuzz invariant: the seed IS
// the program (genProgram is total over int64), so the fuzzer explores
// program space by mutating seeds. The corpora below are drawn from the
// deterministic seed ranges the table-driven differential tests sweep, so
// `go test` without -fuzz still replays known-interesting programs. CI
// runs each target for a short budget (see the Makefile fuzz target).

// fuzzRun compiles and runs one seed at a level, returning the result.
// Unlike runSeed it reports failures instead of t.Fatal-ing so the fuzzer
// can minimize.
func fuzzRun(t *testing.T, seed int64, lvl passes.Level, tweak func(*VM)) (int64, bool) {
	return fuzzRunEngine(t, seed, lvl, false, tweak)
}

// fuzzRunEngine is fuzzRun with an engine choice (closure tier on/off).
func fuzzRunEngine(t *testing.T, seed int64, lvl passes.Level, closure bool,
	tweak func(*VM)) (int64, bool) {
	m := genProgram(seed)
	pl := passes.Build(lvl)
	if err := pl.Run(m); err != nil {
		t.Errorf("seed %d: passes: %v", seed, err)
		return 0, false
	}
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	cfg.GuardMech = guard.MechRange
	cfg.Closure = closure
	v, err := Load(m, cfg)
	if err != nil {
		t.Errorf("seed %d: load: %v", seed, err)
		return 0, false
	}
	if tweak != nil {
		tweak(v)
	}
	ret, err := v.Run()
	if err != nil {
		t.Errorf("seed %d: run: %v", seed, err)
		return 0, false
	}
	return ret, true
}

// FuzzDifferentialPipeline: every pipeline level computes the same result
// as the uninstrumented program.
func FuzzDifferentialPipeline(f *testing.F) {
	for _, seed := range []int64{1, 7, 19, 33, 40, 50, 57, 65} {
		f.Add(seed)
	}
	levels := []passes.Level{
		passes.LevelGuardsOnly, passes.LevelGuardsOpt,
		passes.LevelTracking, passes.LevelTrackingOnly,
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		want, ok := fuzzRun(t, seed, passes.LevelNone, nil)
		if !ok {
			return
		}
		for _, lvl := range levels {
			if got, ok := fuzzRun(t, seed, lvl, nil); ok && got != want {
				t.Errorf("seed %d level %d: got %d, want %d", seed, lvl, got, want)
			}
			if got, ok := fuzzRunEngine(t, seed, lvl, true, nil); ok && got != want {
				t.Errorf("seed %d level %d closure: got %d, want %d", seed, lvl, got, want)
			}
		}
	})
}

// FuzzDifferentialMoves: concurrent worst-case page moves are invisible
// to the tracked program.
func FuzzDifferentialMoves(f *testing.F) {
	for _, seed := range []int64{100, 111, 125, 200, 210, 220} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		want, ok := fuzzRun(t, seed, passes.LevelTracking, nil)
		if !ok {
			return
		}
		movePolicy := func(v *VM) {
			v.SetMovePolicy(750, func() error { return v.InjectWorstCaseMove() })
		}
		if got, ok := fuzzRun(t, seed, passes.LevelTracking, movePolicy); ok && got != want {
			t.Errorf("seed %d with page moves: got %d, want %d", seed, got, want)
		}
		if got, ok := fuzzRunEngine(t, seed, passes.LevelTracking, true, movePolicy); ok && got != want {
			t.Errorf("seed %d with page moves closure: got %d, want %d", seed, got, want)
		}
	})
}

// FuzzGuardsAgreeOnForgedPointers: guard optimization must never change
// whether an access is admitted. For a fuzzer-chosen forged address,
// optimized guards must trap exactly when unoptimized guards do (and,
// when both admit, the loaded value must match).
func FuzzGuardsAgreeOnForgedPointers(f *testing.F) {
	for _, addr := range []uint64{0, 8, 4096, 87654321000, 1 << 40, ^uint64(0) &^ 7} {
		f.Add(addr)
	}
	f.Fuzz(func(t *testing.T, addr uint64) {
		addr &^= 7 // the interpreter requires aligned 8-byte loads
		// The IR parser reads i64 literals as signed; the bit pattern is
		// what inttoptr cares about.
		src := fmt.Sprintf(`module "forge"
func @main() -> i64 {
entry:
  %%p = inttoptr i64 %d to ptr
  %%v = load i64, %%p
  ret i64 %%v
}`, int64(addr))
		run := func(lvl passes.Level) (int64, error) {
			m := compile(t, src, lvl)
			cfg := DefaultConfig()
			cfg.MemBytes = 1 << 22
			cfg.HeapBytes = 1 << 18
			v, err := Load(m, cfg)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			return v.Run()
		}
		wantRet, wantErr := run(passes.LevelGuardsOnly)
		for _, lvl := range []passes.Level{passes.LevelGuardsOpt, passes.LevelTracking} {
			gotRet, gotErr := run(lvl)
			if (gotErr == nil) != (wantErr == nil) {
				t.Errorf("addr %#x level %d: err %v, unoptimized err %v", addr, lvl, gotErr, wantErr)
			} else if gotErr == nil && gotRet != wantRet {
				t.Errorf("addr %#x level %d: got %d, want %d", addr, lvl, gotRet, wantRet)
			}
		}
	})
}
