package vm

import (
	"errors"
	"strings"
	"testing"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/passes"
)

// compile runs the given pipeline level over a parsed module.
func compile(t testing.TB, src string, lvl passes.Level) *ir.Module {
	t.Helper()
	m := ir.MustParse(src)
	pl := passes.Build(lvl)
	if err := pl.Run(m); err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func run(t testing.TB, m *ir.Module, cfg Config) (*VM, int64) {
	t.Helper()
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v, ret
}

const sumSrc = `module "sum"
global @a : [64 x i64]
func @main() -> i64 {
entry:
  br ^fill
fill:
  %i = phi i64 [0, ^entry], [%i1, ^fill]
  %p = gep i64, @a, %i
  store i64 %i, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 64
  condbr %c, ^fill, ^sum
sum:
  br ^loop
loop:
  %j = phi i64 [0, ^sum], [%j1, ^loop]
  %acc = phi i64 [0, ^sum], [%acc1, ^loop]
  %q = gep i64, @a, %j
  %x = load i64, %q
  %acc1 = add i64 %acc, %x
  %j1 = add i64 %j, 1
  %d = icmp slt i64 %j1, 64
  condbr %d, ^loop, ^done
done:
  ret i64 %acc1
}`

func TestRunSumAllModes(t *testing.T) {
	const want = 63 * 64 / 2
	cases := []struct {
		name string
		lvl  passes.Level
		mode Mode
		mech guard.Mechanism
	}{
		{"baseline-traditional", passes.LevelNone, ModeTraditional, guard.MechRange},
		{"baseline-carat", passes.LevelNone, ModeCARAT, guard.MechRange},
		{"guards-range", passes.LevelGuardsOnly, ModeCARAT, guard.MechRange},
		{"guards-mpx", passes.LevelGuardsOnly, ModeCARAT, guard.MechMPX},
		{"guards-opt", passes.LevelGuardsOpt, ModeCARAT, guard.MechRange},
		{"tracking", passes.LevelTracking, ModeCARAT, guard.MechRange},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := compile(t, sumSrc, c.lvl)
			cfg := DefaultConfig()
			cfg.Mode = c.mode
			cfg.GuardMech = c.mech
			cfg.MemBytes = 1 << 24
			cfg.HeapBytes = 1 << 20
			_, ret := run(t, m, cfg)
			if ret != want {
				t.Errorf("result = %d, want %d", ret, want)
			}
		})
	}
}

func TestGuardOverheadOrdering(t *testing.T) {
	// Cycle counts must order: baseline <= optimized guards <= naive guards.
	mkCycles := func(lvl passes.Level, mech guard.Mechanism) uint64 {
		m := compile(t, sumSrc, lvl)
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 24
		cfg.HeapBytes = 1 << 20
		cfg.GuardMech = mech
		v, _ := run(t, m, cfg)
		return v.Cycles
	}
	base := mkCycles(passes.LevelNone, guard.MechRange)
	naive := mkCycles(passes.LevelGuardsOnly, guard.MechRange)
	opt := mkCycles(passes.LevelGuardsOpt, guard.MechRange)
	mpx := mkCycles(passes.LevelGuardsOnly, guard.MechMPX)
	if !(base < opt && opt < naive) {
		t.Errorf("cycle ordering wrong: base %d, opt %d, naive %d", base, opt, naive)
	}
	if mpx >= naive {
		t.Errorf("MPX guards (%d) not cheaper than range guards (%d)", mpx, naive)
	}
}

func TestHeapAndTracking(t *testing.T) {
	src := `module "heap"
global @slot : ptr
func @malloc(%sz: i64) -> ptr
func @free(%p: ptr) -> void
func @main() -> i64 {
entry:
  %p = call ptr @malloc(i64 256)
  store ptr %p, @slot
  %q = gep i64, %p, 3
  store i64 41, %q
  %x = load i64, %q
  %x1 = add i64 %x, 1
  call void @free(ptr %p)
  ret i64 %x1
}`
	m := compile(t, src, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	v, ret := run(t, m, cfg)
	if ret != 42 {
		t.Errorf("result = %d, want 42", ret)
	}
	rs := v.Runtime().Stats
	if rs.Allocs.Get() == 0 || rs.Frees.Get() != 1 || rs.EscapeEvents.Get() == 0 {
		t.Errorf("tracking stats = %+v", rs)
	}
}

func TestGuardFaultOutOfRegion(t *testing.T) {
	// Forge a pointer far outside any region; the guard must fault.
	src := `module "bad"
func @main() -> i64 {
entry:
  %p = inttoptr i64 123456789 to ptr
  %x = load i64, %p
  ret i64 %x
}`
	m := compile(t, src, passes.LevelGuardsOnly)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = v.Run()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected Fault, got %v", err)
	}
	if !strings.Contains(f.Msg, "guard") {
		t.Errorf("fault message = %q", f.Msg)
	}
}

func TestUnguardedBaselineHitsBusFault(t *testing.T) {
	// Without guards, the stray access reaches "hardware" and still cannot
	// corrupt other memory in the simulator: it faults at the bus.
	src := `module "bad"
func @main() -> i64 {
entry:
  %p = inttoptr i64 999999999999 to ptr
  %x = load i64, %p
  ret i64 %x
}`
	m := compile(t, src, passes.LevelNone)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	v, _ := Load(m, cfg)
	if _, err := v.Run(); err == nil {
		t.Error("stray access did not fault")
	}
}

func TestProtectionChangeObservedByGuards(t *testing.T) {
	// Revoking write permission on the globals region must make the next
	// guarded store fault.
	src := `module "prot"
global @g : i64
func @main() -> i64 {
entry:
  store i64 1, @g
  ret i64 0
}`
	m := compile(t, src, passes.LevelGuardsOnly)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-run: flip the globals region to read-only.
	gaddr := v.GlobalAddr(m.Global("g"))
	page := gaddr &^ (kernel.PageSize - 1)
	if err := v.Process().RequestProtect(page, kernel.PageSize, guard.PermRead); err != nil {
		t.Fatal(err)
	}
	_, err = v.Run()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected Fault after protection change, got %v", err)
	}
	if f.Perm != guard.PermWrite {
		t.Errorf("fault perm = %v, want write", f.Perm)
	}
}

func TestPageMoveDuringExecutionPreservesSemantics(t *testing.T) {
	// The program repeatedly walks a heap structure through an escaped
	// pointer; injected worst-case page moves must not change the result.
	src := `module "move"
global @slot : ptr
func @malloc(%sz: i64) -> ptr
func @main() -> i64 {
entry:
  %p = call ptr @malloc(i64 4096)
  store ptr %p, @slot
  br ^outer
outer:
  %it = phi i64 [0, ^entry], [%it1, ^outerlatch]
  %base = load ptr, @slot
  br ^fill
fill:
  %i = phi i64 [0, ^outer], [%i1, ^fill]
  %q = gep i64, %base, %i
  store i64 %i, %q
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 256
  condbr %c, ^fill, ^check
check:
  %b2 = load ptr, @slot
  %q0 = gep i64, %b2, 255
  %x = load i64, %q0
  call void @print_i64(i64 %x)
  br ^outerlatch
outerlatch:
  %it1 = add i64 %it, 1
  %oc = icmp slt i64 %it1, 50
  condbr %oc, ^outer, ^done
done:
  ret i64 0
}
func @print_i64(%x: i64) -> void`
	m := compile(t, src, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	v.SetMovePolicy(5000, func() error {
		moves++
		return v.InjectWorstCaseMove()
	})
	if _, err := v.Run(); err != nil {
		t.Fatalf("Run with moves: %v", err)
	}
	if moves == 0 {
		t.Fatal("no moves were injected")
	}
	for i, out := range v.Output {
		if out != 255 {
			t.Fatalf("output[%d] = %d, want 255 (semantics broken by move)", i, out)
		}
	}
	if v.Kernel().Stats.PageMoves.Get() == 0 {
		t.Error("kernel recorded no page moves")
	}
	if len(v.Runtime().MoveStats) != moves {
		t.Errorf("move breakdowns = %d, want %d", len(v.Runtime().MoveStats), moves)
	}
}

func TestDifferentialOptimizedVsNaive(t *testing.T) {
	// Guard optimizations must not change program output (DESIGN invariant).
	for _, src := range []string{sumSrc} {
		mN := compile(t, src, passes.LevelGuardsOnly)
		mO := compile(t, src, passes.LevelGuardsOpt)
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 24
		cfg.HeapBytes = 1 << 20
		_, retN := run(t, mN, cfg)
		_, retO := run(t, mO, cfg)
		if retN != retO {
			t.Errorf("naive %d != optimized %d", retN, retO)
		}
	}
}

func TestTraditionalModeCountsTLBEvents(t *testing.T) {
	m := compile(t, sumSrc, passes.LevelNone)
	cfg := DefaultConfig()
	cfg.Mode = ModeTraditional
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	cfg.Paging = kernel.NewPagingModel(10, 0)
	v, ret := run(t, m, cfg)
	if ret != 63*64/2 {
		t.Fatalf("ret = %d", ret)
	}
	if v.Hierarchy().Stats.Lookups.Get() == 0 {
		t.Error("no TLB lookups in traditional mode")
	}
	if v.Hierarchy().Stats.Walks.Get() == 0 {
		t.Error("no pagewalks (demand paging should miss at least once)")
	}
	if cfg.Paging.PageAllocs == 0 {
		t.Error("paging model saw no allocations")
	}
}

func TestCallsAndRecursion(t *testing.T) {
	src := `module "fib"
func @fib(%n: i64) -> i64 {
entry:
  %c = icmp slt i64 %n, 2
  condbr %c, ^base, ^rec
base:
  ret i64 %n
rec:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %a = call i64 @fib(i64 %n1)
  %b = call i64 @fib(i64 %n2)
  %s = add i64 %a, %b
  ret i64 %s
}
func @main() -> i64 {
entry:
  %r = call i64 @fib(i64 15)
  ret i64 %r
}`
	m := compile(t, src, passes.LevelGuardsOpt)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 18
	_, ret := run(t, m, cfg)
	if ret != 610 {
		t.Errorf("fib(15) = %d, want 610", ret)
	}
}

func TestAllocaAndStackDiscipline(t *testing.T) {
	src := `module "st"
func @leaf(%x: i64) -> i64 {
entry:
  %buf = alloca i64, 8
  %p = gep i64, %buf, 3
  store i64 %x, %p
  %y = load i64, %p
  ret i64 %y
}
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %r = call i64 @leaf(i64 %i)
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 1000
  condbr %c, ^loop, ^done
done:
  ret i64 %r
}`
	// 1000 iterations of an 8-slot alloca: the stack must not leak
	// (allocas pop on return).
	m := compile(t, src, passes.LevelGuardsOnly)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 18
	cfg.StackBytes = 1 << 16 // 64 KB: would overflow if allocas leaked
	_, ret := run(t, m, cfg)
	if ret != 999 {
		t.Errorf("result = %d, want 999", ret)
	}
}

func TestStackOverflowFaults(t *testing.T) {
	src := `module "so"
func @rec(%n: i64) -> i64 {
entry:
  %buf = alloca i64, 512
  store i64 %n, %buf
  %n1 = add i64 %n, 1
  %r = call i64 @rec(i64 %n1)
  ret i64 %r
}
func @main() -> i64 {
entry:
  %r = call i64 @rec(i64 0)
  ret i64 %r
}`
	m := compile(t, src, passes.LevelNone)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 18
	cfg.StackBytes = 1 << 16
	v, _ := Load(m, cfg)
	if _, err := v.Run(); err == nil {
		t.Error("unbounded recursion did not fault")
	}
}

func TestThreads(t *testing.T) {
	src := `module "thr"
global @acc : [4 x i64]
func @worker(%arg: ptr) -> i64 {
entry:
  %idx = ptrtoint ptr %arg to i64
  %p = gep i64, @acc, %idx
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %x = load i64, %p
  %x1 = add i64 %x, 1
  store i64 %x1, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 1000
  condbr %c, ^loop, ^done
done:
  ret i64 0
}
func @thread_spawn(%fn: ptr, %arg: ptr) -> i64
func @thread_join(%tid: i64) -> void
func @main() -> i64 {
entry:
  %a0 = inttoptr i64 0 to ptr
  %a1 = inttoptr i64 1 to ptr
  %t0 = call i64 @thread_spawn(ptr @worker, ptr %a0)
  %t1 = call i64 @thread_spawn(ptr @worker, ptr %a1)
  call void @thread_join(i64 %t0)
  call void @thread_join(i64 %t1)
  %p0 = gep i64, @acc, 0
  %p1 = gep i64, @acc, 1
  %v0 = load i64, %p0
  %v1 = load i64, %p1
  %s = add i64 %v0, %v1
  ret i64 %s
}`
	m := compile(t, src, passes.LevelGuardsOnly)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 18
	_, ret := run(t, m, cfg)
	if ret != 2000 {
		t.Errorf("threaded sum = %d, want 2000", ret)
	}
}

func TestIntegerWidthSemantics(t *testing.T) {
	src := `module "w"
func @main() -> i64 {
entry:
  %a = add i32 2147483647, 1
  %b = sext i32 %a to i64
  %c = zext i32 %a to i64
  %s = add i64 %b, %c
  ret i64 %s
}`
	m := compile(t, src, passes.LevelNone)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	_, ret := run(t, m, cfg)
	// i32 overflow wraps to -2147483648; sext = -2^31, zext = 2^31.
	if ret != 0 {
		t.Errorf("width semantics: got %d, want 0", ret)
	}
}

func TestSubWordMemoryAccess(t *testing.T) {
	src := `module "sw"
global @buf : [16 x i8]
func @main() -> i64 {
entry:
  %p = gep i8, @buf, 3
  store i8 -1, %p
  %x = load i8, %p
  %y = sext i8 %x to i64
  ret i64 %y
}`
	m := compile(t, src, passes.LevelGuardsOnly)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	_, ret := run(t, m, cfg)
	if ret != -1 {
		t.Errorf("i8 round trip = %d, want -1", ret)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	src := `module "dz"
func @main() -> i64 {
entry:
  %z = sub i64 1, 1
  %d = sdiv i64 5, %z
  ret i64 %d
}`
	m := compile(t, src, passes.LevelNone)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	v, _ := Load(m, cfg)
	if _, err := v.Run(); err == nil || !strings.Contains(err.Error(), "zero") {
		t.Errorf("division by zero: %v", err)
	}
}

func TestFloatArithmetic(t *testing.T) {
	src := `module "f"
func @main() -> i64 {
entry:
  %a = fadd f64 1.5, 2.25
  %b = fmul f64 %a, 4.0
  %c = fdiv f64 %b, 3.0
  %d = fsub f64 %c, 1.0
  %i = fptosi f64 %d to i64
  ret i64 %i
}`
	m := compile(t, src, passes.LevelNone)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	_, ret := run(t, m, cfg)
	if ret != 4 { // (3.75*4)/3 - 1 = 4
		t.Errorf("float chain = %d, want 4", ret)
	}
}

func TestMaxInstrsAborts(t *testing.T) {
	src := `module "inf"
func @main() -> i64 {
entry:
  br ^loop
loop:
  br ^loop
}`
	m := compile(t, src, passes.LevelNone)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 22
	cfg.HeapBytes = 1 << 18
	cfg.MaxInstrs = 100000
	v, _ := Load(m, cfg)
	if _, err := v.Run(); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("infinite loop: %v", err)
	}
}
