package vm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/runtime"
)

// The VM's thread model: every program thread runs on its own goroutine,
// but a baton discipline ensures exactly one executes at a time, switching
// at safepoints. This keeps execution deterministic (important for
// differential testing of the guard optimizations and page moves) while
// still exercising the full multi-thread world-stop protocol of Figure 8:
// when a change request arrives, all other threads are by construction
// parked at safepoints with their register state published.

type threadState int

const (
	tReady threadState = iota
	tRunning
	tJoinWait
	tDone
)

type thread struct {
	id     int64
	v      *VM
	state  threadState
	waitOn int64 // valid in tJoinWait

	frames []*frame

	stackBase uint64 // lowest address of the stack region
	stackTop  uint64 // one past the highest
	sp        uint64 // grows down
	minSP     uint64 // stack high-water mark (lowest sp seen)

	entry    *ir.Func
	arg      uint64
	result   uint64
	err      error
	resume   chan struct{}
	yielded  chan struct{}
	sliceEnd uint64 // instruction count at which to yield

	// xc is this thread's guard/translation cache (nil when disabled);
	// escBuf is its escape-event batch, flushed at yields and completion.
	xc     *guard.XCache
	escBuf *runtime.EscapeBuffer
}

// frame is one activation record: the function's SSA "registers" plus the
// stack-pointer save for alloca unwinding.
type frame struct {
	fn     *ir.Func
	fi     *funcInfo
	regs   []uint64
	spSave uint64
}

// scheduler round-robins threads and implements runtime.BoundedWorld.
type scheduler struct {
	v       *VM
	threads []*thread
	nextID  int64
	quantum uint64
	stopped bool // world currently stopped (nested stops are a protocol bug)

	// External suspension — the per-process stop request of the ragged
	// safepoint protocol. stopReq is the process's "due" word: every
	// block-head safepoint gate (all three execution tiers, including the
	// closure tier's self-loop fast path) loads it, and when set the
	// running guest thread parks inside safepoint() until every suspension
	// is resumed. Only THIS process checks the word; sibling processes on
	// the same machine never see it — a stop request for process A costs
	// process B nothing but its ordinary block-head load of B's own word.
	//
	// susMu/susCond guard suspendReqs (outstanding suspensions) and
	// running (a guest thread currently holds the baton). The mutex also
	// publishes everything a suspender mutates (register patches, table
	// rebases, region-set changes) to the guest before it resumes.
	stopReq     atomic.Bool
	susMu       sync.Mutex
	susCond     *sync.Cond
	suspendReqs int
	running     bool
}

func newScheduler(v *VM) *scheduler {
	s := &scheduler{v: v, quantum: 10_000}
	s.susCond = sync.NewCond(&s.susMu)
	return s
}

// suspend blocks until this process's guest execution is parked at a
// safepoint (or not running at all) and returns a resume function. Nested
// suspensions stack; the guest resumes when the last one is released.
// Callable from any goroutine EXCEPT the process's own guest threads —
// a guest suspending itself would deadlock (its own park is what the
// suspender waits for). While suspended, the caller may stop this
// process's world (moves, protection changes, swaps) without racing the
// guest: every thread is at a safepoint with its register state
// published, exactly the Figure-8 precondition.
func (s *scheduler) suspend() (resume func()) {
	s.susMu.Lock()
	s.suspendReqs++
	s.stopReq.Store(true)
	for s.running {
		s.susCond.Wait()
	}
	s.susMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.susMu.Lock()
			s.suspendReqs--
			if s.suspendReqs == 0 {
				s.stopReq.Store(false)
			}
			s.susCond.Broadcast()
			s.susMu.Unlock()
		})
	}
}

// park holds the calling guest thread at its safepoint until every
// outstanding suspension is resumed. The thread's escape batch is flushed
// first so the suspender observes a fully-applied allocation map (same
// invariant as a world stop). Charges are already flushed: every caller
// reaches park through a safepoint gate that flushed deferred counters.
func (s *scheduler) park(t *thread) {
	t.escBuf.Flush()
	s.susMu.Lock()
	for s.suspendReqs > 0 {
		s.running = false
		s.susCond.Broadcast()
		s.susCond.Wait()
	}
	s.running = true
	s.susMu.Unlock()
}

// newThread allocates a stack region and creates a parked thread.
func (s *scheduler) newThread(entry *ir.Func, arg uint64) (*thread, error) {
	stackBytes := s.v.cfg.StackBytes
	if stackBytes == 0 {
		stackBytes = DefaultConfig().StackBytes
	}
	// The stack region is granted (guards must admit it) but NOT
	// registered as one big allocation: individual allocas are tracked by
	// the instrumentation, and nesting allocations is not representable.
	// In capsule mode stacks are carved from the heap instead — "additional
	// stacks are allocated from the process heap" (§3).
	var base uint64
	if s.v.cfg.Capsule {
		base = s.v.heap.alloc(stackBytes)
		if base == 0 {
			return nil, fmt.Errorf("vm: capsule heap exhausted allocating a stack")
		}
	} else {
		var err error
		base, err = s.v.proc.GrantRegion(stackBytes, guard.PermRW)
		if err != nil {
			return nil, fmt.Errorf("vm: stack region: %w", err)
		}
	}
	s.nextID++
	t := &thread{
		id:        s.nextID,
		v:         s.v,
		state:     tReady,
		stackBase: base,
		stackTop:  base + stackBytes,
		sp:        base + stackBytes,
		minSP:     base + stackBytes,
		entry:     entry,
		arg:       arg,
		resume:    make(chan struct{}),
		yielded:   make(chan struct{}),
		escBuf:    s.v.rt.NewEscapeBuffer(),
	}
	if s.v.cfg.XCache && s.v.cfg.Mode == ModeCARAT {
		t.xc = guard.NewXCache()
	}
	s.threads = append(s.threads, t)
	go t.run()
	return t, nil
}

// run is a thread goroutine: wait for the baton, execute, hand it back.
func (t *thread) run() {
	<-t.resume
	args := []uint64{}
	if len(t.entry.Params) == 1 {
		args = []uint64{t.arg}
	}
	ret, err := t.v.call(t, t.entry, args)
	t.result, t.err = ret, err
	t.state = tDone
	t.escBuf.Flush()
	t.yielded <- struct{}{}
}

// yield hands the baton back to the scheduler and waits to be resumed.
// Called at safepoints when the time slice expires or when blocking. The
// thread's escape batch is flushed first so escape events apply in program
// order across the thread switch.
func (t *thread) yield() {
	t.escBuf.Flush()
	t.yielded <- struct{}{}
	<-t.resume
}

// safepoint is called at block boundaries; it processes scheduler work:
// external stop requests, time-slice expiry, injected page moves, and
// instruction limits.
func (t *thread) safepoint() error {
	v := t.v
	if v.sched.stopReq.Load() {
		v.sched.park(t)
	}
	if v.cfg.MaxInstrs > 0 && v.Instrs > v.cfg.MaxInstrs {
		return fmt.Errorf("vm: instruction limit exceeded (%d)", v.cfg.MaxInstrs)
	}
	if v.cfg.MaxCycles > 0 && v.Cycles > v.cfg.MaxCycles {
		return fmt.Errorf("vm: cycle budget exceeded (%d)", v.cfg.MaxCycles)
	}
	if v.track != nil && v.track.Due(v.Cycles) {
		// One or more sampling intervals elapsed since the last sample:
		// attribute them to this thread's guest stack (it held the baton
		// for the interval that tripped the check) and settle the phase
		// counters at the same granularity.
		v.track.Sample(v.Cycles, t.foldedStack)
		v.foldPhaseSamples()
	}
	if v.movePolicy != nil && v.moveTrigger.Due(v.Instrs) {
		if err := v.movePolicy(); err != nil {
			return err
		}
	}
	if v.Instrs >= t.sliceEnd {
		if t.v.sched.runnableOthers(t) {
			t.state = tReady
			t.yield()
			t.state = tRunning
		}
		t.sliceEnd = v.Instrs + t.v.sched.quantum
	}
	return nil
}

// foldedStack renders this thread's live call stack root-first in the
// folded "a;b;c" form the profiler aggregates on.
func (t *thread) foldedStack() string {
	if len(t.frames) == 0 {
		return t.entry.Name
	}
	var b strings.Builder
	for i, fr := range t.frames {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(fr.fn.Name)
	}
	return b.String()
}

// runnableOthers reports whether another thread could run.
func (s *scheduler) runnableOthers(cur *thread) bool {
	for _, t := range s.threads {
		if t != cur && t.state == tReady {
			return true
		}
	}
	return false
}

// beginRun opens the running window for the suspension protocol: a
// suspension arriving before the run starts holds it here; one arriving
// mid-run parks the guest at its next safepoint. VM.Run brackets its
// ENTIRE body (guest execution plus the cycle-folding/metrics tail) with
// beginRun/endRun, so a suspender that observed running==false owns every
// piece of VM state — not just the scheduler's.
func (s *scheduler) beginRun() {
	s.susMu.Lock()
	for s.suspendReqs > 0 {
		s.susCond.Wait()
	}
	s.running = true
	s.susMu.Unlock()
}

// endRun closes the running window, handing the process to any waiting
// suspender.
func (s *scheduler) endRun() {
	s.susMu.Lock()
	s.running = false
	s.susCond.Broadcast()
	s.susMu.Unlock()
}

// runMain creates the main thread and drives the round-robin until every
// thread finishes. It returns main's result. The caller (VM.Run) must
// hold the running window via beginRun/endRun.
func (s *scheduler) runMain(main *ir.Func) (int64, error) {
	mt, err := s.newThread(main, 0)
	if err != nil {
		return 0, err
	}
	for {
		t := s.pick()
		if t == nil {
			break
		}
		t.state = tRunning
		t.sliceEnd = s.v.Instrs + s.quantum
		t.resume <- struct{}{}
		<-t.yielded
		if t.state == tRunning {
			t.state = tReady
		}
		if t.state == tDone && t.err != nil {
			return 0, t.err
		}
		// Wake joiners of finished threads.
		for _, w := range s.threads {
			if w.state == tJoinWait {
				if tgt := s.byID(w.waitOn); tgt == nil || tgt.state == tDone {
					w.state = tReady
				}
			}
		}
	}
	if mt.err != nil {
		return 0, mt.err
	}
	return int64(mt.result), nil
}

// pick returns the next ready thread, preferring round-robin fairness.
func (s *scheduler) pick() *thread {
	for _, t := range s.threads {
		if t.state == tReady {
			return t
		}
	}
	// Deadlock check: joinwait threads with no runnable target.
	for _, t := range s.threads {
		if t.state == tJoinWait {
			panic("vm: join deadlock")
		}
	}
	return nil
}

func (s *scheduler) byID(id int64) *thread {
	for _, t := range s.threads {
		if t.id == id {
			return t
		}
	}
	return nil
}

// StopTheWorld implements runtime.World. Under the baton discipline every
// thread except (at most) the one triggering the change request is parked
// at a safepoint, so the register state of all threads is already
// published — the moral equivalent of the signal-handler register dump in
// Figure 8. It returns one RegSet per live frame set.
func (s *scheduler) StopTheWorld() []runtime.RegSet {
	if s.stopped {
		panic("vm: nested world stop")
	}
	s.stopped = true
	out := make([]runtime.RegSet, 0, len(s.threads))
	for _, t := range s.threads {
		if t.state == tDone {
			continue
		}
		out = append(out, &threadRegs{t: t})
	}
	return out
}

// ResumeTheWorld implements runtime.World; with the baton discipline
// nothing needs releasing.
func (s *scheduler) ResumeTheWorld() { s.stopped = false }

// StopBatch implements runtime.BoundedWorld: re-stop the world for the
// next bounded patch window. Threads are still parked at the safepoints
// where the opening StopTheWorld found them (the baton discipline means no
// mutator ran during the window gap), so the RegSet handles handed out by
// the opening stop remain valid — threadRegs reads through to the live
// frames, exactly as the BoundedWorld contract requires.
func (s *scheduler) StopBatch() []runtime.RegSet { return s.StopTheWorld() }

// ResumeBatch implements runtime.BoundedWorld: end a bounded window,
// letting mutators reach their next safepoints before the following
// StopBatch.
func (s *scheduler) ResumeBatch() { s.stopped = false }

// rebaseStacks relocates thread stack bookkeeping after a move of
// [src, src+length) to dst. Only threads whose stack region actually
// intersects the moved range are touched: sp and spSave are boundary
// pointers (an empty stack's sp equals stackTop, which is numerically the
// base of whatever the kernel placed just above the stack), so naively
// rebasing them whenever their value falls inside a moved range would drag
// them along with moves of adjacent, unrelated pages.
func (s *scheduler) rebaseStacks(src, dst, length uint64) {
	reb := func(a uint64) uint64 {
		if a >= src && a < src+length {
			return a - src + dst
		}
		return a
	}
	for _, t := range s.threads {
		if t.stackBase >= src+length || src >= t.stackTop {
			continue // this thread's stack did not move
		}
		oldTop := t.stackTop
		t.stackBase = reb(t.stackBase)
		t.stackTop = reb(t.stackTop-1) + 1 // one-past-end: rebase last byte
		if t.sp == oldTop {
			t.sp = t.stackTop // empty stack: sp tracks the top boundary
		} else {
			t.sp = reb(t.sp) // sp points at live alloca data
		}
		t.minSP = reb(t.minSP)
		for _, fr := range t.frames {
			if fr.spSave == oldTop {
				fr.spSave = t.stackTop
			} else {
				fr.spSave = reb(fr.spSave)
			}
		}
	}
}

// threadRegs exposes a thread's pointer-typed SSA slots across all frames
// as one flat register file for patching.
type threadRegs struct{ t *thread }

// Regs implements runtime.RegSet.
func (r *threadRegs) Regs() []uint64 {
	var out []uint64
	for _, fr := range r.t.frames {
		for _, slot := range fr.fi.ptrSlots {
			out = append(out, fr.regs[slot])
		}
	}
	return out
}

// SetReg implements runtime.RegSet.
func (r *threadRegs) SetReg(i int, v uint64) {
	for _, fr := range r.t.frames {
		n := len(fr.fi.ptrSlots)
		if i < n {
			fr.regs[fr.fi.ptrSlots[i]] = v
			return
		}
		i -= n
	}
}

// spawn implements the thread_spawn builtin: fnAddr must be a function
// code address; the new thread receives arg. Returns the thread id.
func (s *scheduler) spawn(fnAddr, arg uint64) (int64, error) {
	fn, ok := s.v.funcAt[fnAddr]
	if !ok {
		return 0, fmt.Errorf("vm: thread_spawn of non-function address %#x", fnAddr)
	}
	t, err := s.newThread(fn, arg)
	if err != nil {
		return 0, err
	}
	return t.id, nil
}

// join implements the thread_join builtin from thread cur.
func (s *scheduler) join(cur *thread, id int64) {
	tgt := s.byID(id)
	if tgt == nil || tgt.state == tDone {
		return
	}
	cur.state = tJoinWait
	cur.waitOn = id
	cur.yield()
	cur.state = tRunning
}
