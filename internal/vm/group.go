package vm

import (
	"fmt"
	"sync"

	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/obs"
)

// Group runs several processes of one simulated machine truly
// concurrently: each process's guest threads execute on real goroutines
// over the shared PhysMem, with the per-process ragged-safepoint protocol
// replacing the old global stop. This is the multi-core execution model:
// a move in process A suspends only A (and any other owner of the
// affected pages, per Kernel.OwnersOf); process B's block-head fast path
// never even branches.
//
// Determinism contract: each member runs inside its own page arena with a
// private metrics registry, so its model cycles, guard counts, output,
// and arena memory digest are byte-identical at any GOMAXPROCS — only the
// cross-process interleaving varies. Close() merges the private
// registries into the kernel's and asserts full page-accounting
// integrity (every frame and every arena handed back, no page left with
// a recorded owner).
type Group struct {
	kern  *kernel.Kernel
	procs []*member
	free0 uint64 // machine free pages at group creation
}

type member struct {
	name string
	vm   *VM
	reg  *obs.Registry
}

// GroupResult is one process's outcome. Digest folds the architectural
// results (return value, instruction/cycle/guard counts, output) with an
// FNV-1a checksum of the process's entire arena — the per-process half of
// the PhysMem integrity check.
type GroupResult struct {
	Name        string
	Ret         int64
	Err         error
	Instrs      uint64
	Cycles      uint64
	GuardChecks uint64
	Output      []int64
	Digest      uint64
}

// NewGroup builds a fresh machine for a set of concurrent processes.
func NewGroup(memBytes uint64) *Group {
	k := kernel.NewWith(memBytes, obs.NewRegistry())
	return &Group{kern: k, free0: k.Alloc.FreePages()}
}

// Kernel exposes the shared machine (ownership queries, memory checks).
func (g *Group) Kernel() *kernel.Kernel { return g.kern }

// Add loads a module as a new process of the group's machine, giving it a
// private arena of arenaPages pages and a private metrics registry.
// cfg.Kernel, cfg.Obs, and cfg.ArenaPages are overwritten. Calls must
// happen before Run, from one goroutine: load order determines arena
// placement, so it is part of the deterministic setup. The returned VM
// may be configured further (move policies, fault injectors) before Run.
func (g *Group) Add(name string, mod *ir.Module, cfg Config, arenaPages uint64) (*VM, error) {
	reg := obs.NewRegistry()
	cfg.Kernel = g.kern
	cfg.Obs = reg
	cfg.ArenaPages = arenaPages
	v, err := Load(mod, cfg)
	if err != nil {
		return nil, fmt.Errorf("vm: group add %q: %w", name, err)
	}
	g.procs = append(g.procs, &member{name: name, vm: v, reg: reg})
	return v, nil
}

// Run executes every member on its own goroutine and blocks until all
// finish, returning results in Add order. Each result — including its
// digest — is computed on the member's own goroutine, so it reflects only
// that process's execution.
func (g *Group) Run() []GroupResult {
	out := make([]GroupResult, len(g.procs))
	var wg sync.WaitGroup
	for i, m := range g.procs {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			ret, err := m.vm.Run()
			r := GroupResult{
				Name:        m.name,
				Ret:         ret,
				Err:         err,
				Instrs:      m.vm.Instrs,
				Cycles:      m.vm.Cycles,
				GuardChecks: m.vm.GuardChecks,
				Output:      append([]int64(nil), m.vm.Output...),
			}
			r.Digest = digestResult(&r, m.vm)
			out[i] = r
		}(i, m)
	}
	wg.Wait()
	return out
}

// digestResult folds a member's architectural results and arena bytes
// into one FNV-1a word.
func digestResult(r *GroupResult, v *VM) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(r.Ret))
	mix(r.Instrs)
	mix(r.Cycles)
	mix(r.GuardChecks)
	mix(uint64(len(r.Output)))
	for _, o := range r.Output {
		mix(uint64(o))
	}
	if a := v.Arena(); a != nil {
		sum, err := v.kern.Mem.ChecksumRange(a.Base(), a.Bytes())
		if err != nil {
			mix(^uint64(0))
		} else {
			mix(sum)
		}
	}
	return h
}

// StopOwners suspends every process owning pages in [base, base+length)
// — the ragged stop set — and returns a resume function releasing them.
// Suspension is in ascending process-ID order (and resume in reverse), so
// concurrent multi-range stops cannot deadlock against each other.
// Processes with no pages in the range are not touched.
func (g *Group) StopOwners(base, length uint64) (resume func()) {
	owners := g.kern.OwnersOf(base, length)
	var resumes []func()
	for _, p := range owners {
		for _, m := range g.procs {
			if m.vm.proc == p {
				resumes = append(resumes, m.vm.Suspend())
				break
			}
		}
	}
	return func() {
		for i := len(resumes) - 1; i >= 0; i-- {
			resumes[i]()
		}
	}
}

// Close releases every member (regions and arenas) and verifies machine
// integrity: all pages back in the machine allocator and no page with a
// recorded owner. It then merges each member's private registry into the
// kernel registry, so group metrics aggregate like any other run's.
func (g *Group) Close() error {
	var firstErr error
	for _, m := range g.procs {
		if err := m.vm.Release(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("vm: group release %q: %w", m.name, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if free := g.kern.Alloc.FreePages(); free != g.free0 {
		return fmt.Errorf("vm: group leaked pages: %d free, want %d", free, g.free0)
	}
	if n := g.kern.OwnedPageCount(); n != 0 {
		return fmt.Errorf("vm: group left %d pages with owners", n)
	}
	for _, m := range g.procs {
		snap := m.reg.Snapshot()
		for name, val := range snap.Counters {
			g.kern.Obs.Counter(name).Add(val)
		}
		for name, hs := range snap.Histograms {
			g.kern.Obs.Histogram(name).Merge(hs)
		}
	}
	return nil
}
