package vm

import (
	"io"
	"testing"

	"carat/internal/obs"
	"carat/internal/passes"
)

// The <2% requirement: a VM run with tracing disabled (Config.Trace nil)
// must cost the same as one that never heard of tracing. The hot loop
// contains no tracer calls at all — instants fire only on faults, moves,
// and paging events — so the disabled case is zero-cost by construction;
// these benchmarks exist to catch a regression that puts tracer work on
// the hot path. Compare:
//
//	go test ./internal/vm/ -bench VMTracer -benchtime 10x
func benchmarkVMRun(b *testing.B, tr *obs.Tracer) {
	m := compile(b, chaseSrc, passes.LevelTracking)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 24
		cfg.HeapBytes = 1 << 21
		cfg.Trace = tr
		v, err := Load(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMTracerDisabled(b *testing.B) {
	benchmarkVMRun(b, nil)
}

func BenchmarkVMTracerEnabled(b *testing.B) {
	tr := obs.NewTracer(io.Discard, nil)
	defer tr.Close()
	benchmarkVMRun(b, tr)
}
