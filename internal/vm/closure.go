package vm

import (
	"errors"
	"fmt"
	"math"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/obs"
	"carat/internal/runtime"
)

// The closure execution tier. The predecoded form still pays one switch
// dispatch plus a five-counter accounting sequence per instruction; this
// tier lowers each pfunc one step further into chained Go closures, where
// every basic block becomes one superinstruction closure that fuses its
// straight-line body:
//
//   - per-instruction accounting is batched into one charge per "group"
//     (a maximal run of pure instructions, optionally ended by the single
//     observing instruction that can fault, trace, or reach a safepoint);
//   - compare+branch pairs collapse into a fused terminator;
//   - guard-check + load/store pairs collapse into one step whose fast path
//     is a single fused xcache probe (guard.CheckTranslateCached) followed
//     by a direct physical access — no separate translate, no duplicate
//     operand read (GEP+guard+access triples fold in for free: the GEP is
//     pure, so it rides the same batched charge);
//   - global/function operands are baked to constant addresses;
//   - call sites carry a monomorphic inline cache keyed by the callee's
//     compiled body.
//
// Each block closure returns the next block's closure directly, so there is
// no central dispatch loop — just a trampoline.
//
// The compiled form is specialized against a snapshot of mutable machine
// state (baked global/code addresses, xcache-fusable guard paths), so every
// cfunc is stamped with the guard RegionSet epoch at compile time. Page
// moves, grants/releases, and the incremental protocol's forwarding windows
// all bump that epoch; allocation-granularity moves and swap in/out do not,
// but they also never relocate globals or code, so baked addresses stay
// valid within an epoch. Stale epochs deopt:
//
//   - at function entry: recompile (one counted deopt);
//   - at a block head: transfer the live activation to the predecode tier
//     via pexecFrom (one counted deopt) and drop the compiled body;
//   - after any call step (a nested call can move pages, spawn a thread —
//     which grants a stack region — or open a forwarding window): finish
//     the activation on the predecode tier mid-block (one counted deopt).
//
// Epochs can only change at safepoints and inside calls, and the baton
// discipline means no other thread runs between a block's epoch check and
// its next call/terminator, so these three checks are sufficient.
//
// Like the predecode tier, all of this is host-speed only: instruction
// counts, modeled cycles, the cycle profile, guard evaluator state, xcache
// hit/miss counters, and runtime callback order are byte-identical with the
// baseline interpreter (closure_test.go and the engine-parity differential
// tests pin this).

// cenv is the per-activation state threaded through a compiled function's
// block closures. Everything per-VM or per-function is captured by the
// closures at compile time; cenv carries only what varies per call.
//
// pendN/pendCyc accumulate instruction and cycle charges not yet applied to
// the VM-wide and per-function counters. Nothing on a block's fast path
// reads those counters, so charges defer across whole blocks and flush
// (cflush) only where something can observe them: block entry (before the
// safepoint, where the sampler and move policies read), before any step
// that can fault, trace, walk a guard, or call out, and at Ret.
type cenv struct {
	t        *thread
	fr       *frame
	xc       *guard.XCache // t.xc, cached to skip a pointer chase per access
	ret      uint64        // return value, set by Ret terminators and deopt paths
	pending  []pcopy       // phi copies owed to the block about to run (deopt form)
	pendingC []ccopy       // same copies, compiled (fast form); always set together
	tmp      []uint64
	prof     *obs.FuncProfile
	pendN    uint64 // instruction charges not yet applied
	pendCyc  uint64 // cycle charges not yet applied
}

// cflush applies the deferred charges. Called at every point where the
// counters become observable; the per-instruction tiers' invariant — all
// instructions up to and including the observing one are charged before it
// executes — is restored exactly at each such point.
func (v *VM) cflush(e *cenv) {
	if e.pendN != 0 || e.pendCyc != 0 {
		v.Instrs += e.pendN
		v.Cycles += e.pendCyc
		v.Prof.Cat[obs.CatCompute] += e.pendCyc
		e.prof.Instrs += e.pendN
		e.prof.Cycles += e.pendCyc
		e.pendN, e.pendCyc = 0, 0
	}
}

// ccopy is one compiled phi assignment: regs[dst] receives regs[src], with
// immediate/global sources resolved through the constant pool.
type ccopy struct {
	dst int32
	src cop
}

// cstep executes one fused step of a block body.
type cstep func(e *cenv) error

// cpure executes one pure (infallible, non-observing) instruction. Pure
// steps run inside a segment's batched charge closure with no per-step
// error check — by construction nothing they lower can fail.
type cpure func(e *cenv)

// cblock is one compiled basic block. run executes the block (safepoint,
// epoch check, pending phi copies, body steps) and returns the next block,
// or nil when the activation completed (Ret, or a deopt that finished it on
// the predecode tier).
type cblock struct {
	run func(e *cenv) (*cblock, error)
}

// cfunc is a compiled function body, valid for exactly one region epoch.
// Constants (immediates, baked global/function addresses) live in a pool
// appended to the frame's register file at activation entry, so every
// compiled operand is a plain register index — no per-read branch on
// operand kind. Pool slots sit above nslots and are invisible to the
// per-instruction tiers and the move protocol's register patcher (which
// walks funcInfo.ptrSlots, all below nslots).
type cfunc struct {
	epoch   uint64
	blocks  []*cblock
	pf      *pfunc
	maxPhis int
	nslots  int32
	consts  []uint64
	cindex  map[uint64]int32 // value -> pool register; compile-time only
	nregs   int
}

// callIC is a per-call-site monomorphic inline cache: when the callee's
// current compiled body matches, the call skips the funcInfo state checks
// and enters the compiled form directly. The baton discipline makes the
// unsynchronized fields safe. The epoch stamp makes a hit self-validating:
// ic.cf was compiled at ic.epoch, so epoch equality proves it fresh.
type callIC struct {
	cf    *cfunc
	epoch uint64
}

// errClosureDone signals, from a call step to its block's run loop, that
// the activation already completed on the predecode tier (post-call epoch
// deopt): e.ret holds the result and no further steps may run.
var errClosureDone = errors.New("vm: closure activation completed via deopt")

// cop is a compiled operand: an index into the activation's extended
// register file. SSA slots keep their indices; constants (immediates and
// baked global/function addresses, valid for the cfunc's epoch) resolve to
// pool registers above nslots — so reading any operand is one branchless
// indexed load.
type cop int32

func (o cop) get(fr *frame) uint64 { return fr.regs[o] }

// constSlot interns a constant into the cfunc's pool, returning its
// register index.
func (cf *cfunc) constSlot(val uint64) cop {
	if i, ok := cf.cindex[val]; ok {
		return cop(i)
	}
	i := cf.nslots + int32(len(cf.consts))
	cf.consts = append(cf.consts, val)
	cf.cindex[val] = i
	return cop(i)
}

// cdecode resolves a predecoded operand against the current address tables.
func (v *VM) cdecode(cf *cfunc, p poperand) cop {
	switch p.kind {
	case pkSlot:
		return cop(p.idx)
	case pkImm:
		return cf.constSlot(p.imm)
	case pkGlobal:
		return cf.constSlot(v.globalPhys[p.idx])
	default:
		return cf.constSlot(v.funcPhys[p.idx])
	}
}

// cgep is one dynamic GEP index with its stride.
type cgep struct {
	op     cop
	stride int64
}

// ccallFunc is the closure-tier call entry: compile on first use (or on a
// stale epoch), fall back to the predecode tier for refused shapes.
func (v *VM) ccallFunc(t *thread, f *ir.Func, args []uint64) (uint64, error) {
	fi := v.funcs[f]
	if fi.noClosure {
		return v.pcallFunc(t, f, args)
	}
	cf := fi.cf
	epoch := v.proc.Regions.Epoch
	if cf == nil || cf.epoch != epoch {
		if cf != nil {
			// Stale compiled body found at entry: the world changed since
			// compilation (recompiling is the deopt).
			v.closureDeopts++
		}
		pf := fi.pf
		if pf == nil {
			pf = v.predecodeFunc(f, fi)
			fi.pf = pf
		}
		nc, ok := v.compileClosure(f, fi, pf, epoch)
		if !ok {
			// Undecodable shape somewhere in the body: refuse once, run on
			// the predecode tier permanently.
			v.closureDeopts++
			fi.noClosure = true
			fi.cf = nil
			return v.pcallFunc(t, f, args)
		}
		fi.cf = nc
		cf = nc
	}
	return v.ccallCompiled(t, f, fi, cf, args)
}

// ccallCompiled runs one activation through a compiled body. The frame
// prologue (profiling, frame push, alloca unwinding, depth check) is
// byte-identical with pcallFunc; the body is the block trampoline.
func (v *VM) ccallCompiled(t *thread, f *ir.Func, fi *funcInfo, cf *cfunc, args []uint64) (uint64, error) {
	fi.prof.Calls++
	fr := &frame{fn: f, fi: fi, regs: make([]uint64, cf.nregs), spSave: t.sp}
	copy(fr.regs, args) // params occupy slots 0..len(Params)-1 in order
	copy(fr.regs[cf.nslots:], cf.consts)
	t.frames = append(t.frames, fr)
	defer func() {
		t.frames = t.frames[:len(t.frames)-1]
		if t.sp < fr.spSave {
			v.rt.UntrackStackRange(t.sp, fr.spSave)
		}
		t.sp = fr.spSave
	}()
	if len(t.frames) > 10000 {
		return 0, fmt.Errorf("vm: call stack overflow in @%s", f.Name)
	}
	e := &cenv{t: t, fr: fr, xc: t.xc, prof: fi.prof}
	if cf.maxPhis > 0 {
		e.tmp = make([]uint64, cf.maxPhis)
	}
	blk := cf.blocks[0]
	var err error
	for blk != nil {
		blk, err = blk.run(e)
		if err != nil {
			return 0, err
		}
	}
	return e.ret, nil
}

// cdataAddr is pdataAddr over a compiled operand: translate with one
// swap-in retry on a poisoned pointer. Re-reading the operand after the
// swap-in is what picks up the runtime's pointer patch (only slot operands
// can hold poisoned heap pointers; baked operands re-read to the same
// constant, which is correct because swap-in never moves globals or code).
func (v *VM) cdataAddr(fr *frame, o cop, size uint64, perm guard.Perm) (uint64, error) {
	addr := o.get(fr)
	paddr, err := v.translate(addr, size, perm)
	if err == nil {
		return paddr, nil
	}
	if slot, _, ok := runtime.DecodeSwapPoison(addr); ok {
		if serr := v.swapIn(slot); serr != nil {
			return 0, &Fault{Addr: addr, Size: size, Perm: perm, Msg: "swap-in failed: " + serr.Error()}
		}
		return v.translate(o.get(fr), size, perm)
	}
	return 0, err
}

// compileClosure lowers pf into chained block closures, specialized against
// the current epoch. Returns ok=false when any instruction carries the
// predecoder's fallback flag (exotic shapes execute through execInstr,
// which the closure form cannot batch soundly).
func (v *VM) compileClosure(f *ir.Func, fi *funcInfo, pf *pfunc, epoch uint64) (*cfunc, bool) {
	for bi := range pf.blocks {
		for ci := range pf.blocks[bi].code {
			if pf.blocks[bi].code[ci].fallback {
				return nil, false
			}
		}
	}
	cf := &cfunc{
		epoch:   epoch,
		pf:      pf,
		maxPhis: pf.maxPhis,
		blocks:  make([]*cblock, len(pf.blocks)),
		nslots:  int32(fi.nSlots),
		cindex:  make(map[uint64]int32),
	}
	for i := range cf.blocks {
		cf.blocks[i] = &cblock{}
	}
	for bi := range pf.blocks {
		v.compileBlock(f, fi, pf, cf, int32(bi))
	}
	cf.nregs = int(cf.nslots) + len(cf.consts)
	cf.cindex = nil
	v.closureBlocks += uint64(len(pf.blocks))
	return cf, true
}

// cobserving reports whether an instruction can observe or perturb machine
// state mid-block (fault, trace, guard walk, nested safepoints, division
// errors). Observing instructions end a charge group: the group's batched
// accounting lands just before the observing instruction executes, so at
// every observation point the counters are exactly what the per-instruction
// tiers would show.
func cobserving(op ir.Op) bool {
	switch op {
	case ir.OpLoad, ir.OpStore, ir.OpGuard, ir.OpCall, ir.OpAlloca,
		ir.OpSDiv, ir.OpSRem, ir.OpUDiv, ir.OpURem:
		return true
	}
	return false
}

// compileBlock fills cf.blocks[bi] with its superinstruction closure.
func (v *VM) compileBlock(f *ir.Func, fi *funcInfo, pf *pfunc, cf *cfunc, bi int32) {
	code := pf.blocks[bi].code
	prof := fi.prof

	// take closes the accumulated charge group: the batched accounting for
	// the group (including the observing instruction about to run, whose
	// per-instruction tiers charge it before executing it) plus the group's
	// pure steps, run with no per-step error checks — pures are infallible.
	// The charge itself lands on the cenv's deferred counters.
	var groupN, groupCyc uint64
	var groupPures []cpure
	take := func(extraN, extraCyc uint64) (uint64, uint64, []cpure) {
		n, cyc, pures := groupN+extraN, groupCyc+extraCyc, groupPures
		groupN, groupCyc, groupPures = 0, 0, nil
		return n, cyc, pures
	}

	var steps []cstep

	// Identify the terminator and a possible fused compare+branch: the
	// block's last two instructions collapse when the compare's result
	// feeds the conditional branch directly. The compare still writes its
	// slot (other blocks may read it through a phi).
	ti := len(code) - 1
	bodyEnd := ti
	fuseCmpBr := false
	if ti >= 0 {
		t := &code[ti]
		if t.op == ir.OpCondBr && ti >= 1 && t.a.kind == pkSlot {
			p := &code[ti-1]
			if (p.op == ir.OpICmp || p.op == ir.OpFCmp) && p.dst >= 0 && p.dst == t.a.idx {
				fuseCmpBr = true
				bodyEnd = ti - 1
			}
		}
	}

	// Lower the body into segments: pures accumulate into the pending
	// group; each observing instruction closes the group into one fused
	// step (deferred charge + pures + its own action).
	for i := 0; i < bodyEnd; i++ {
		in := &code[i]
		if !cobserving(in.op) {
			// GEP+guard+access fusion: a single-dynamic-index GEP whose
			// result immediately feeds the guard and access collapses into
			// the access step — the address computes inline, skipping one
			// closure call and a register round-trip (the result slot is
			// still written: later instructions and cold paths read it).
			if in.op == ir.OpGEP && len(in.gepSteps) == 1 && in.dst >= 0 && i+2 < bodyEnd {
				g, nx := &code[i+1], &code[i+2]
				if g.op == ir.OpGuard && g.a.kind == pkSlot && g.a.idx == in.dst &&
					((g.kind == ir.GuardLoad && nx.op == ir.OpLoad && g.a == nx.a) ||
						(g.kind == ir.GuardStore && nx.op == ir.OpStore && g.a == nx.b)) {
					groupN++ // the GEP rides the group charge
					groupCyc += uint64(in.cost)
					segN, segCyc, pures := take(1, uint64(g.cost))
					steps = append(steps, v.compileGuardedAccess(cf, g, nx, in, prof, segN, segCyc, pures))
					i += 2
					continue
				}
			}
			groupN++
			groupCyc += uint64(in.cost)
			groupPures = append(groupPures, v.compilePure(cf, in))
			continue
		}
		// Guard+access fusion: a load/store guard immediately followed by
		// the access it covers (same address operand) becomes one step.
		if in.op == ir.OpGuard && i+1 < bodyEnd {
			nx := &code[i+1]
			if (in.kind == ir.GuardLoad && nx.op == ir.OpLoad && in.a == nx.a) ||
				(in.kind == ir.GuardStore && nx.op == ir.OpStore && in.a == nx.b) {
				// The guard rides the group charge; the whole segment —
				// charge, pures, fused probe+access — is one step.
				segN, segCyc, pures := take(1, uint64(in.cost))
				steps = append(steps, v.compileGuardedAccess(cf, in, nx, nil, prof, segN, segCyc, pures))
				i++
				continue
			}
		}
		segN, segCyc, pures := take(1, uint64(in.cost))
		ob := v.compileObserving(f, fi, pf, cf, bi, i, in, prof)
		steps = append(steps, func(e *cenv) error {
			e.pendN += segN
			e.pendCyc += segCyc
			for _, p := range pures {
				p(e)
			}
			v.cflush(e)
			return ob(e)
		})
	}

	// Trailing pures plus the terminator(s) form the final charge group,
	// run just before the terminator closure.
	var termN, termCyc uint64
	for i := bodyEnd; i <= ti && i >= 0; i++ {
		termN++
		termCyc += uint64(code[i].cost)
	}
	finalN, finalCyc, finalPures := take(termN, termCyc)

	term := v.compileTerm(f, cf, code, ti, fuseCmpBr)

	blk := cf.blocks[bi]
	myIdx := bi
	bsteps := steps

	// Self-loop specialization: a fused compare+branch whose taken edge
	// re-enters this same block, in a block with no call steps, can iterate
	// inside one run() invocation while the VM is unobserved. The entry
	// checks are loop-invariant there: with a single thread, no sampler, no
	// move policy, and no limits, nothing else executes between iterations —
	// no call can spawn a thread or move pages (the body has no calls), so
	// the epoch and the observer set are frozen until run() returns. Each
	// fast iteration is just phi copies, body steps, the final charge group,
	// and the compare — no trampoline, no safepoint, no epoch re-check.
	// Any observer present at entry (or appearing before entry) disables the
	// internal loop, falling back to one block per run() with a safepoint at
	// every head, byte-identical with the per-instruction tiers.
	hasCall := false
	for i := 0; i < bodyEnd; i++ {
		if code[i].op == ir.OpCall {
			hasCall = true
			break
		}
	}
	if fuseCmpBr && !hasCall && (code[ti].succ0 == bi || code[ti].succ1 == bi) {
		v.compileSelfLoop(fi, pf, cf, bi, code, ti, bsteps, finalN, finalCyc, finalPures)
		return
	}
	maxI, maxC := v.safepointLimits()
	blk.run = func(e *cenv) (*cblock, error) {
		t := e.t
		// A block-head safepoint only matters when it would DO something: a
		// sibling thread needs the slice bookkeeping, a sample or migration
		// is due, or a limit is about to trip. The pre-checks mirror the
		// safepoint's own tests exactly, evaluated on (flushed + deferred)
		// counters — the same values a flush would produce — and Track.Due /
		// RareMigration.Pending are side-effect-free when false. So skipping
		// flush + safepoint when every pre-check is false is invisible: the
		// charges ride through to the next observation point. Limits compare
		// at the block head before the incoming edge's phi copies are
		// charged, exactly where the per-instruction tiers trap.
		if v.sched.stopReq.Load() || len(v.sched.threads) > 1 ||
			(v.track != nil && v.track.Due(v.Cycles+e.pendCyc)) ||
			(v.movePolicy != nil && v.moveTrigger.Pending(v.Instrs+e.pendN)) ||
			v.Instrs+e.pendN > maxI || v.Cycles+e.pendCyc > maxC {
			// Deferred charges flush before the safepoint: the sampler, move
			// policies, and pause attribution all read the counters there.
			v.cflush(e)
			if err := t.safepoint(); err != nil {
				return nil, err
			}
		}
		// The epoch check runs after the safepoint: an injected move at
		// this very safepoint must deopt this block, not the next.
		if v.proc.Regions.Epoch != cf.epoch {
			v.closureDeopts++
			fi.cf = nil
			v.cflush(e)
			ret, err := v.pexecFrom(t, e.fr, pf, myIdx, 0, e.pending, true)
			e.ret = ret
			return nil, err
		}
		if n := len(e.pendingC); n > 0 {
			applyCopies(e, e.pendingC)
			e.pendN += uint64(n)
			e.pending, e.pendingC = nil, nil
		}
		for _, st := range bsteps {
			if err := st(e); err != nil {
				if err == errClosureDone {
					return nil, nil
				}
				return nil, err
			}
		}
		e.pendN += finalN
		e.pendCyc += finalCyc
		for _, p := range finalPures {
			p(e)
		}
		return term(e)
	}
}

// safepointLimits returns the instruction and cycle limits as saturating
// thresholds (no limit = MaxUint64), so hot paths compare against them
// unconditionally.
func (v *VM) safepointLimits() (uint64, uint64) {
	maxI, maxC := v.cfg.MaxInstrs, v.cfg.MaxCycles
	if maxI == 0 {
		maxI = ^uint64(0)
	}
	if maxC == 0 {
		maxC = ^uint64(0)
	}
	return maxI, maxC
}

// applyCopies performs one edge's compiled phi assignments with
// parallel-copy semantics: all sources are read before any destination is
// written. The small-n cases stay in locals; wider phi sets buffer through
// the activation's scratch slice.
func applyCopies(e *cenv, cc []ccopy) {
	fr := e.fr
	switch n := len(cc); n {
	case 1:
		fr.regs[cc[0].dst] = cc[0].src.get(fr)
	case 2:
		t0, t1 := cc[0].src.get(fr), cc[1].src.get(fr)
		fr.regs[cc[0].dst] = t0
		fr.regs[cc[1].dst] = t1
	default:
		for i := 0; i < n; i++ {
			e.tmp[i] = cc[i].src.get(fr)
		}
		for i := 0; i < n; i++ {
			fr.regs[cc[i].dst] = e.tmp[i]
		}
	}
}

// compileCmpBit lowers a compare that feeds a fused conditional branch:
// the closure writes the compare's result slot (later blocks may read it
// through a phi) and returns the branch bit.
func (v *VM) compileCmpBit(cf *cfunc, p *pinstr) func(fr *frame) uint64 {
	ca, cb := v.cdecode(cf, p.a), v.cdecode(cf, p.b)
	dst := p.dst
	pred := p.pred
	if p.op == ir.OpFCmp {
		return func(fr *frame) uint64 {
			x := math.Float64frombits(ca.get(fr))
			y := math.Float64frombits(cb.get(fr))
			bit := boolBit(fcmp(pred, x, y))
			fr.regs[dst] = bit
			return bit
		}
	}
	maskCmp, srcBits := p.maskCmp, int(p.srcBits)
	if maskCmp {
		return func(fr *frame) uint64 {
			a, b := maskToWidth(ca.get(fr), srcBits), maskToWidth(cb.get(fr), srcBits)
			bit := boolBit(icmp(pred, a, b))
			fr.regs[dst] = bit
			return bit
		}
	}
	return func(fr *frame) uint64 {
		bit := boolBit(icmp(pred, ca.get(fr), cb.get(fr)))
		fr.regs[dst] = bit
		return bit
	}
}

// compileSelfLoop builds the specialized runner for a block whose fused
// compare+branch re-enters the block itself (see the call site for why the
// internal loop is sound). The observed path — anything attached that reads
// counters at safepoints, or a sibling thread — runs exactly one iteration
// per run() call, like every other block.
func (v *VM) compileSelfLoop(fi *funcInfo, pf *pfunc, cf *cfunc, bi int32, code []pinstr, ti int, bsteps []cstep, finalN, finalCyc uint64, finalPures []cpure) {
	in := &code[ti]
	cmp := v.compileCmpBit(cf, &code[ti-1])
	b0, b1 := cf.blocks[in.succ0], cf.blocks[in.succ1]
	cp0, cp1 := in.copies0, in.copies1
	ccp0, ccp1 := v.compileCopies(cf, cp0), v.compileCopies(cf, cp1)
	n0, n1 := uint64(len(cp0)), uint64(len(cp1))
	selfOnTrue := in.succ0 == bi
	selfOnFalse := in.succ1 == bi

	maxI, maxC := v.safepointLimits()
	blk := cf.blocks[bi]
	blk.run = func(e *cenv) (*cblock, error) {
		t := e.t
		// fast freezes for the whole run() call: the body has no call steps,
		// so nothing inside the internal loop can attach a policy, spawn a
		// thread, or move pages — and without a move policy, even a
		// safepoint taken for a due sample cannot change the epoch. Limits
		// and the sampler stay live via the per-iteration head check.
		fast := v.movePolicy == nil && len(v.sched.threads) == 1
		trk := v.track
		if v.sched.stopReq.Load() || !fast ||
			(trk != nil && trk.Due(v.Cycles+e.pendCyc)) ||
			v.Instrs+e.pendN > maxI || v.Cycles+e.pendCyc > maxC {
			v.cflush(e)
			if err := t.safepoint(); err != nil {
				return nil, err
			}
		}
		if v.proc.Regions.Epoch != cf.epoch {
			v.closureDeopts++
			fi.cf = nil
			v.cflush(e)
			ret, err := v.pexecFrom(t, e.fr, pf, bi, 0, e.pending, true)
			e.ret = ret
			return nil, err
		}
		if n := len(e.pendingC); n > 0 {
			applyCopies(e, e.pendingC)
			e.pendN += uint64(n)
			e.pending, e.pendingC = nil, nil
		}
		for {
			for _, st := range bsteps {
				if err := st(e); err != nil {
					if err == errClosureDone {
						return nil, nil
					}
					return nil, err
				}
			}
			e.pendN += finalN
			e.pendCyc += finalCyc
			for _, p := range finalPures {
				p(e)
			}
			if cmp(e.fr) != 0 {
				if selfOnTrue && fast {
					// The virtual block head: a stop request, a due sample, or
					// a limit about to trip takes the safepoint on flushed
					// counters, before the edge copies are charged — exactly
					// where the per-instruction tiers sample or trap. (Copies
					// cost zero cycles, so sample timing is unaffected by
					// their charge landing in the previous iteration.)
					if v.sched.stopReq.Load() ||
						(trk != nil && trk.Due(v.Cycles+e.pendCyc)) ||
						v.Instrs+e.pendN > maxI || v.Cycles+e.pendCyc > maxC {
						v.cflush(e)
						if err := t.safepoint(); err != nil {
							return nil, err
						}
						// A park inside that safepoint may have let an
						// external mover change the epoch — the frozen-epoch
						// argument only covers work done by this loop itself.
						if v.proc.Regions.Epoch != cf.epoch {
							v.closureDeopts++
							fi.cf = nil
							ret, err := v.pexecFrom(t, e.fr, pf, bi, 0, cp0, true)
							e.ret = ret
							return nil, err
						}
					}
					applyCopies(e, ccp0)
					e.pendN += n0
					continue
				}
				e.pending, e.pendingC = cp0, ccp0
				return b0, nil
			}
			if selfOnFalse && fast {
				if v.sched.stopReq.Load() ||
					(trk != nil && trk.Due(v.Cycles+e.pendCyc)) ||
					v.Instrs+e.pendN > maxI || v.Cycles+e.pendCyc > maxC {
					v.cflush(e)
					if err := t.safepoint(); err != nil {
						return nil, err
					}
					if v.proc.Regions.Epoch != cf.epoch {
						v.closureDeopts++
						fi.cf = nil
						ret, err := v.pexecFrom(t, e.fr, pf, bi, 0, cp1, true)
						e.ret = ret
						return nil, err
					}
				}
				applyCopies(e, ccp1)
				e.pendN += n1
				continue
			}
			e.pending, e.pendingC = cp1, ccp1
			return b1, nil
		}
	}
}

// compileTerm lowers a block's terminator (possibly fused with the
// preceding compare). The terminator's cycle charge already landed in the
// block's final charge group.
func (v *VM) compileTerm(f *ir.Func, cf *cfunc, code []pinstr, ti int, fuseCmpBr bool) func(e *cenv) (*cblock, error) {
	if ti < 0 {
		return func(e *cenv) (*cblock, error) {
			v.cflush(e)
			return nil, fmt.Errorf("vm: block without terminator in @%s", f.Name)
		}
	}
	in := &code[ti]
	switch in.op {
	case ir.OpBr:
		nb := cf.blocks[in.succ0]
		cp := in.copies0
		ccp := v.compileCopies(cf, cp)
		return func(e *cenv) (*cblock, error) {
			e.pending, e.pendingC = cp, ccp
			return nb, nil
		}

	case ir.OpCondBr:
		b0, b1 := cf.blocks[in.succ0], cf.blocks[in.succ1]
		cp0, cp1 := in.copies0, in.copies1
		ccp0, ccp1 := v.compileCopies(cf, cp0), v.compileCopies(cf, cp1)
		if fuseCmpBr {
			p := &code[ti-1]
			ca, cb := v.cdecode(cf, p.a), v.cdecode(cf, p.b)
			dst := p.dst
			pred := p.pred
			if p.op == ir.OpFCmp {
				return func(e *cenv) (*cblock, error) {
					fr := e.fr
					x := math.Float64frombits(ca.get(fr))
					y := math.Float64frombits(cb.get(fr))
					bit := boolBit(fcmp(pred, x, y))
					fr.regs[dst] = bit
					if bit != 0 {
						e.pending, e.pendingC = cp0, ccp0
						return b0, nil
					}
					e.pending, e.pendingC = cp1, ccp1
					return b1, nil
				}
			}
			maskCmp, srcBits := p.maskCmp, int(p.srcBits)
			return func(e *cenv) (*cblock, error) {
				fr := e.fr
				a, b := ca.get(fr), cb.get(fr)
				if maskCmp {
					a, b = maskToWidth(a, srcBits), maskToWidth(b, srcBits)
				}
				bit := boolBit(icmp(pred, a, b))
				fr.regs[dst] = bit
				if bit != 0 {
					e.pending, e.pendingC = cp0, ccp0
					return b0, nil
				}
				e.pending, e.pendingC = cp1, ccp1
				return b1, nil
			}
		}
		cond := v.cdecode(cf, in.a)
		return func(e *cenv) (*cblock, error) {
			if cond.get(e.fr)&1 != 0 {
				e.pending, e.pendingC = cp0, ccp0
				return b0, nil
			}
			e.pending, e.pendingC = cp1, ccp1
			return b1, nil
		}

	case ir.OpRet:
		if in.args != nil {
			a := v.cdecode(cf, in.a)
			return func(e *cenv) (*cblock, error) {
				v.cflush(e)
				e.ret = a.get(e.fr)
				return nil, nil
			}
		}
		return func(e *cenv) (*cblock, error) {
			v.cflush(e)
			e.ret = 0
			return nil, nil
		}

	default: // ir.OpUnreachable, or a malformed block
		return func(e *cenv) (*cblock, error) {
			v.cflush(e)
			return nil, fmt.Errorf("vm: reached unreachable in @%s", f.Name)
		}
	}
}

// compileCopies lowers one CFG edge's phi assignments to compiled form.
func (v *VM) compileCopies(cf *cfunc, cp []pcopy) []ccopy {
	if len(cp) == 0 {
		return nil
	}
	cc := make([]ccopy, len(cp))
	for i, c := range cp {
		cc[i] = ccopy{dst: c.dst, src: v.cdecode(cf, c.src)}
	}
	return cc
}

// compilePure lowers one pure (non-observing, non-terminator) instruction.
// Pure steps never fail and never touch the accounting counters — their
// segment's prefix closure charges for them and runs them back to back.
func (v *VM) compilePure(cf *cfunc, in *pinstr) cpure {
	dst := in.dst
	switch in.op {
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		a, b := v.cdecode(cf, in.a), v.cdecode(cf, in.b)
		op := in.op
		return func(e *cenv) {
			fr := e.fr
			x, y := math.Float64frombits(a.get(fr)), math.Float64frombits(b.get(fr))
			var r float64
			switch op {
			case ir.OpFAdd:
				r = x + y
			case ir.OpFSub:
				r = x - y
			case ir.OpFMul:
				r = x * y
			case ir.OpFDiv:
				r = x / y
			}
			fr.regs[dst] = math.Float64bits(r)
		}

	case ir.OpICmp:
		a, b := v.cdecode(cf, in.a), v.cdecode(cf, in.b)
		pred := in.pred
		if in.maskCmp {
			srcBits := int(in.srcBits)
			return func(e *cenv) {
				fr := e.fr
				x, y := maskToWidth(a.get(fr), srcBits), maskToWidth(b.get(fr), srcBits)
				fr.regs[dst] = boolBit(icmp(pred, x, y))
			}
		}
		return func(e *cenv) {
			fr := e.fr
			fr.regs[dst] = boolBit(icmp(pred, a.get(fr), b.get(fr)))
		}

	case ir.OpFCmp:
		a, b := v.cdecode(cf, in.a), v.cdecode(cf, in.b)
		pred := in.pred
		return func(e *cenv) {
			fr := e.fr
			x := math.Float64frombits(a.get(fr))
			y := math.Float64frombits(b.get(fr))
			fr.regs[dst] = boolBit(fcmp(pred, x, y))
		}

	case ir.OpTrunc:
		a := v.cdecode(cf, in.a)
		bits := int(in.bits)
		return func(e *cenv) {
			fr := e.fr
			fr.regs[dst] = uint64(signExtend(a.get(fr), bits))
		}
	case ir.OpZExt:
		a := v.cdecode(cf, in.a)
		srcBits := int(in.srcBits)
		return func(e *cenv) {
			fr := e.fr
			fr.regs[dst] = maskToWidth(a.get(fr), srcBits)
		}
	case ir.OpSExt:
		a := v.cdecode(cf, in.a)
		srcBits := int(in.srcBits)
		return func(e *cenv) {
			fr := e.fr
			fr.regs[dst] = uint64(signExtend(a.get(fr), srcBits))
		}
	case ir.OpPtrToInt, ir.OpIntToPtr:
		a := v.cdecode(cf, in.a)
		return func(e *cenv) {
			fr := e.fr
			fr.regs[dst] = a.get(fr)
		}
	case ir.OpSIToFP:
		a := v.cdecode(cf, in.a)
		return func(e *cenv) {
			fr := e.fr
			fr.regs[dst] = math.Float64bits(float64(int64(a.get(fr))))
		}
	case ir.OpFPToSI:
		a := v.cdecode(cf, in.a)
		bits := int(in.bits)
		return func(e *cenv) {
			fr := e.fr
			fr.regs[dst] = maskSigned(int64(math.Float64frombits(a.get(fr))), bits)
		}

	case ir.OpGEP:
		a := v.cdecode(cf, in.a)
		gc := in.gepConst
		if len(in.gepSteps) == 0 {
			return func(e *cenv) {
				fr := e.fr
				addr := a.get(fr) + gc
				if dst >= 0 {
					fr.regs[dst] = addr
				}
			}
		}
		gsteps := make([]cgep, len(in.gepSteps))
		for i, st := range in.gepSteps {
			gsteps[i] = cgep{op: v.cdecode(cf, st.op), stride: st.stride}
		}
		if len(gsteps) == 1 {
			g0 := gsteps[0]
			return func(e *cenv) {
				fr := e.fr
				addr := a.get(fr) + gc + uint64(int64(g0.op.get(fr))*g0.stride)
				if dst >= 0 {
					fr.regs[dst] = addr
				}
			}
		}
		return func(e *cenv) {
			fr := e.fr
			addr := a.get(fr) + gc
			for i := range gsteps {
				addr += uint64(int64(gsteps[i].op.get(fr)) * gsteps[i].stride)
			}
			if dst >= 0 {
				fr.regs[dst] = addr
			}
		}

	case ir.OpSelect:
		a, b, c := v.cdecode(cf, in.a), v.cdecode(cf, in.b), v.cdecode(cf, in.c)
		return func(e *cenv) {
			fr := e.fr
			var r uint64
			if a.get(fr)&1 != 0 {
				r = b.get(fr)
			} else {
				r = c.get(fr)
			}
			if dst >= 0 {
				fr.regs[dst] = r
			}
		}
	}

	// Pure integer binops (error-free: divisions are observing).
	a, b := v.cdecode(cf, in.a), v.cdecode(cf, in.b)
	bits := int(in.bits)
	op := in.op
	if bits == 64 {
		switch op {
		case ir.OpAdd:
			return func(e *cenv) {
				fr := e.fr
				r := a.get(fr) + b.get(fr)
				if dst >= 0 {
					fr.regs[dst] = r
				}
			}
		case ir.OpSub:
			return func(e *cenv) {
				fr := e.fr
				r := a.get(fr) - b.get(fr)
				if dst >= 0 {
					fr.regs[dst] = r
				}
			}
		case ir.OpMul:
			return func(e *cenv) {
				fr := e.fr
				r := a.get(fr) * b.get(fr)
				if dst >= 0 {
					fr.regs[dst] = r
				}
			}
		case ir.OpAnd:
			return func(e *cenv) {
				fr := e.fr
				r := a.get(fr) & b.get(fr)
				if dst >= 0 {
					fr.regs[dst] = r
				}
			}
		case ir.OpOr:
			return func(e *cenv) {
				fr := e.fr
				r := a.get(fr) | b.get(fr)
				if dst >= 0 {
					fr.regs[dst] = r
				}
			}
		case ir.OpXor:
			return func(e *cenv) {
				fr := e.fr
				r := a.get(fr) ^ b.get(fr)
				if dst >= 0 {
					fr.regs[dst] = r
				}
			}
		}
	}
	return func(e *cenv) {
		fr := e.fr
		r, _ := intBinop(op, a.get(fr), b.get(fr), bits)
		if dst >= 0 {
			fr.regs[dst] = r
		}
	}
}

// compileObserving lowers one observing instruction (ends its charge
// group). in is a stable pointer into pf's code array, so cold paths can
// hand it to the shared predecode helpers unchanged.
func (v *VM) compileObserving(f *ir.Func, fi *funcInfo, pf *pfunc, cf *cfunc, bi int32, ci int, in *pinstr, prof *obs.FuncProfile) cstep {
	dst := in.dst
	switch in.op {
	case ir.OpAlloca:
		a := v.cdecode(cf, in.a)
		elemSize := in.elemSize
		return func(e *cenv) error {
			t, fr := e.t, e.fr
			count := int64(a.get(fr))
			size := alignTo(uint64(count)*elemSize, heapAlign)
			if t.sp < t.stackBase+size {
				return &Fault{Addr: t.sp - size, Size: size, Perm: guard.PermRW, Msg: "stack overflow"}
			}
			t.sp -= size
			if t.sp < t.minSP {
				t.minSP = t.sp
			}
			if dst >= 0 {
				fr.regs[dst] = t.sp
			}
			return nil
		}

	case ir.OpLoad:
		a := v.cdecode(cf, in.a)
		width := uint64(in.width)
		signed, srcBits := in.signed, int(in.srcBits)
		return func(e *cenv) error {
			fr := e.fr
			paddr, err := v.cdataAddr(fr, a, width, guard.PermRead)
			if err != nil {
				return err
			}
			raw := v.kern.Mem.LoadN(paddr, int(width))
			if signed {
				raw = uint64(signExtend(raw, srcBits))
			}
			if dst >= 0 {
				fr.regs[dst] = raw
			}
			return nil
		}

	case ir.OpStore:
		a, b := v.cdecode(cf, in.a), v.cdecode(cf, in.b)
		width := uint64(in.width)
		return func(e *cenv) error {
			fr := e.fr
			val := a.get(fr)
			paddr, err := v.cdataAddr(fr, b, width, guard.PermWrite)
			if err != nil {
				return err
			}
			v.kern.Mem.StoreN(paddr, val, int(width))
			return nil
		}

	case ir.OpGuard:
		// Unfused guard (range/call guards, or an access the fuser could
		// not pair): the shared predecode path keeps miss/swap-in/fault
		// semantics identical.
		return func(e *cenv) error {
			return v.pexecGuard(e.t, e.fr, in)
		}

	case ir.OpCall:
		return v.compileCall(fi, pf, cf, bi, ci, in, prof)
	}

	// Observing integer binops: the divisions, which can fail.
	a, b := v.cdecode(cf, in.a), v.cdecode(cf, in.b)
	bits := int(in.bits)
	op := in.op
	raw := in.raw
	return func(e *cenv) error {
		fr := e.fr
		r, err := intBinop(op, a.get(fr), b.get(fr), bits)
		if err != nil {
			return fmt.Errorf("vm: @%s: %s: %w", fr.fn.Name, raw, err)
		}
		if dst >= 0 {
			fr.regs[dst] = r
		}
		return nil
	}
}

// compileCall lowers a call site: argument marshalling, a monomorphic
// inline cache for compiled callees, and the post-call epoch recheck. A
// nested call is the one mid-block point where the region epoch can change
// (page moves, thread spawn granting a stack region, forwarding windows),
// invalidating this body's baked addresses and fused guard paths — so a
// bumped epoch finishes the activation on the predecode tier, resuming at
// the instruction after the call.
func (v *VM) compileCall(fi *funcInfo, pf *pfunc, cf *cfunc, bi int32, ci int, in *pinstr, prof *obs.FuncProfile) cstep {
	dst := in.dst
	callee := in.callee
	cargsOps := make([]cop, len(in.args))
	for i := range in.args {
		cargsOps[i] = v.cdecode(cf, in.args[i])
	}
	builtin := callee.IsDecl()
	ic := &callIC{}
	return func(e *cenv) error {
		t, fr := e.t, e.fr
		cargs := make([]uint64, len(cargsOps))
		for i := range cargsOps {
			cargs[i] = cargsOps[i].get(fr)
		}
		var ret uint64
		var err error
		if builtin {
			ret, err = v.callBuiltin(t, callee, cargs)
		} else {
			calleeFi := v.funcs[callee]
			if ic.cf != nil && ic.epoch == v.proc.Regions.Epoch && ic.cf == calleeFi.cf {
				v.closureICHits++
				ret, err = v.ccallCompiled(t, callee, calleeFi, ic.cf, cargs)
			} else {
				v.closureICMisses++
				ret, err = v.ccallFunc(t, callee, cargs)
				if nc := calleeFi.cf; nc != nil && nc.epoch == v.proc.Regions.Epoch {
					ic.cf, ic.epoch = nc, nc.epoch
				} else {
					ic.cf = nil
				}
			}
		}
		if err != nil {
			return err
		}
		if dst >= 0 {
			fr.regs[dst] = ret
		}
		if v.proc.Regions.Epoch != cf.epoch {
			// Deopt mid-block: the rest of this activation runs on the
			// predecode tier, entering right after the call (no safepoint
			// until the next block head, same as staying in-tier).
			v.closureDeopts++
			fi.cf = nil
			r2, err2 := v.pexecFrom(t, fr, pf, bi, ci+1, nil, true)
			if err2 != nil {
				return err2
			}
			e.ret = r2
			return errClosureDone
		}
		return nil
	}
}

// compileGuardedAccess fuses a load/store guard with the access it covers
// (plus, when gep is non-nil, the single-dynamic-index GEP that computes
// the address — still writing the GEP's result slot for later readers and
// cold paths). The fast path is one fused xcache probe that both validates
// the access and proves identity translation (see
// guard.CheckTranslateCached), then goes straight to physical memory —
// skipping the separate translate step and the duplicate address-operand
// read. Every other outcome falls back to the exact unfused sequence, so
// guard evaluator state, xcache counters, trace events, and swap-in
// behavior stay byte-identical.
//
// segN/segCyc/pures are the enclosing charge group (which includes the GEP
// and the guard); they land on the deferred counters, as does the access's
// own charge on a hit. The cold path flushes before the guard walk and
// charges the access directly, exactly as the per-instruction tiers would.
func (v *VM) compileGuardedAccess(cf *cfunc, gi, ai, gep *pinstr, prof *obs.FuncProfile, segN, segCyc uint64, pures []cpure) cstep {
	// eval and mem are set once at VM construction and never replaced;
	// capturing them skips two pointer chases per access.
	eval, mem := v.eval, v.kern.Mem
	ga, gb := v.cdecode(cf, gi.a), v.cdecode(cf, gi.b)
	width := uint64(ai.width)
	w := int(ai.width)
	w8 := ai.width == 8
	aCost := uint64(ai.cost)
	dst := ai.dst

	chargeAccess := func() {
		v.Instrs++
		v.Cycles += aCost
		v.Prof.Cat[obs.CatCompute] += aCost
		prof.Instrs++
		prof.Cycles += aCost
	}

	hasGep := gep != nil
	var gbase, gidx cop
	var ggc uint64
	var gstride int64
	var gdst int32
	if hasGep {
		gbase = v.cdecode(cf, gep.a)
		ggc = gep.gepConst
		gidx = v.cdecode(cf, gep.gepSteps[0].op)
		gstride = gep.gepSteps[0].stride
		gdst = gep.dst
	}

	// On a hit the segment's charge and the access's own charge land as one
	// deferred update; the cold path charges them separately (segment before
	// the guard walk, access after it) to match the per-instruction order.
	hitN, hitCyc := segN+1, segCyc+aCost

	if ai.op == ir.OpLoad {
		signed, srcBits := ai.signed, int(ai.srcBits)
		aop := v.cdecode(cf, ai.a)
		return func(e *cenv) error {
			fr := e.fr
			for _, p := range pures {
				p(e)
			}
			regs := fr.regs
			var addr uint64
			if hasGep {
				addr = regs[gbase] + ggc + uint64(int64(regs[gidx])*gstride)
				regs[gdst] = addr
			} else {
				addr = regs[ga]
			}
			gsize := regs[gb]
			if int64(gsize) > 0 && width <= gsize {
				if pa, ok := eval.CheckTranslateCached(e.xc, addr, gsize, guard.PermRead); ok {
					e.pendN += hitN
					e.pendCyc += hitCyc
					var raw uint64
					if w8 {
						raw = mem.Load64(pa)
					} else {
						raw = mem.LoadN(pa, w)
					}
					if signed {
						raw = uint64(signExtend(raw, srcBits))
					}
					if dst >= 0 {
						regs[dst] = raw
					}
					return nil
				}
			}
			t := e.t
			e.pendN += segN
			e.pendCyc += segCyc
			v.cflush(e)
			if err := v.pexecGuard(t, fr, gi); err != nil {
				return err
			}
			chargeAccess()
			paddr, err := v.cdataAddr(fr, aop, width, guard.PermRead)
			if err != nil {
				return err
			}
			raw := mem.LoadN(paddr, w)
			if signed {
				raw = uint64(signExtend(raw, srcBits))
			}
			if dst >= 0 {
				fr.regs[dst] = raw
			}
			return nil
		}
	}

	// Store fusion.
	vop := v.cdecode(cf, ai.a)
	bop := v.cdecode(cf, ai.b)
	return func(e *cenv) error {
		fr := e.fr
		for _, p := range pures {
			p(e)
		}
		regs := fr.regs
		var addr uint64
		if hasGep {
			addr = regs[gbase] + ggc + uint64(int64(regs[gidx])*gstride)
			regs[gdst] = addr
		} else {
			addr = regs[ga]
		}
		gsize := regs[gb]
		if int64(gsize) > 0 && width <= gsize {
			if pa, ok := eval.CheckTranslateCached(e.xc, addr, gsize, guard.PermWrite); ok {
				e.pendN += hitN
				e.pendCyc += hitCyc
				if w8 {
					mem.Store64(pa, regs[vop])
				} else {
					mem.StoreN(pa, regs[vop], w)
				}
				return nil
			}
		}
		t := e.t
		e.pendN += segN
		e.pendCyc += segCyc
		v.cflush(e)
		if err := v.pexecGuard(t, fr, gi); err != nil {
			return err
		}
		chargeAccess()
		val := vop.get(fr)
		paddr, err := v.cdataAddr(fr, bop, width, guard.PermWrite)
		if err != nil {
			return err
		}
		mem.StoreN(paddr, val, w)
		return nil
	}
}
