package vm

import (
	"testing"

	"carat/internal/guard"
	"carat/internal/passes"
	"carat/internal/runtime"
)

// The §6 extensions: allocation-granularity moves, the single-region
// capsule layout, and swap via non-canonical poison addresses.

const chaseSrc = `module "chase"
global @slot : ptr
func @malloc(%sz: i64) -> ptr
func @print_i64(%x: i64) -> void
func @main() -> i64 {
entry:
  %p = call ptr @malloc(i64 1024)
  store ptr %p, @slot
  br ^fill
fill:
  %i = phi i64 [0, ^entry], [%i1, ^fill]
  %base = load ptr, @slot
  %q = gep i64, %base, %i
  store i64 %i, %q
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 128
  condbr %c, ^fill, ^laps
laps:
  br ^lap
lap:
  %l = phi i64 [0, ^laps], [%l1, ^lapend]
  %b2 = load ptr, @slot
  br ^walk
walk:
  %j = phi i64 [0, ^lap], [%j1, ^walk]
  %s = phi i64 [0, ^lap], [%s1, ^walk]
  %r = gep i64, %b2, %j
  %x = load i64, %r
  %s1 = add i64 %s, %x
  %j1 = add i64 %j, 1
  %d = icmp slt i64 %j1, 128
  condbr %d, ^walk, ^lapend
lapend:
  call void @print_i64(i64 %s1)
  %l1 = add i64 %l, 1
  %lc = icmp slt i64 %l1, 30
  condbr %lc, ^lap, ^done
done:
  ret i64 0
}`

func loadChase(t *testing.T, capsule bool) *VM {
	t.Helper()
	m := compile(t, chaseSrc, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 21
	cfg.Capsule = capsule
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func checkAllLaps(t *testing.T, v *VM) {
	t.Helper()
	const want = 127 * 128 / 2
	if len(v.Output) == 0 {
		t.Fatal("no laps recorded")
	}
	for i, s := range v.Output {
		if s != want {
			t.Fatalf("lap %d checksum = %d, want %d", i, s, want)
		}
	}
}

func TestAllocationGranularityMove(t *testing.T) {
	v := loadChase(t, false)
	moves := 0
	v.SetMovePolicy(3000, func() error {
		moves++
		return v.InjectWorstCaseAllocationMove()
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	checkAllLaps(t, v)
	if moves == 0 {
		t.Fatal("no allocation moves happened")
	}
	// Every breakdown must show zero expand cost (the point of §6).
	for _, bd := range v.Runtime().MoveStats {
		if bd.ExpandCycles != 0 {
			t.Errorf("allocation-granularity move has expand cost %d", bd.ExpandCycles)
		}
		if bd.AllocsMoved != 1 {
			t.Errorf("moved %d allocations, want exactly 1", bd.AllocsMoved)
		}
	}
	if err := v.Runtime().Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocationMoveCheaperThanPageMove(t *testing.T) {
	// The ablation behind Table 3's last column: allocation-granularity
	// prototype cost must be well below the page-granularity one.
	vp := loadChase(t, false)
	vp.SetMovePolicy(3000, func() error { return vp.InjectWorstCaseMove() })
	if _, err := vp.Run(); err != nil {
		t.Fatal(err)
	}
	va := loadChase(t, false)
	va.SetMovePolicy(3000, func() error { return va.InjectWorstCaseAllocationMove() })
	if _, err := va.Run(); err != nil {
		t.Fatal(err)
	}
	avg := func(stats []runtime.MoveBreakdown) float64 {
		var tot float64
		for _, bd := range stats {
			tot += float64(bd.TotalCycles())
		}
		return tot / float64(len(stats))
	}
	page := avg(vp.Runtime().MoveStats)
	alloc := avg(va.Runtime().MoveStats)
	if alloc*2 > page {
		t.Errorf("allocation move (%.0f cyc) not well below page move (%.0f cyc)", alloc, page)
	}
}

func TestCapsuleSingleRegion(t *testing.T) {
	v := loadChase(t, true)
	if n := v.Process().Regions.Len(); n != 1 {
		t.Fatalf("capsule layout produced %d regions, want 1: %s", n, v.Process().Regions)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	checkAllLaps(t, v)
}

func TestCapsuleGuardsCheaper(t *testing.T) {
	// The capsule is the optimal case for guards (§3): single-region
	// checks must make the guarded run cheaper than the multi-region one.
	run := func(capsule bool) uint64 {
		v := loadChase(t, capsule)
		if _, err := v.Run(); err != nil {
			t.Fatal(err)
		}
		return v.Cycles
	}
	multi := run(false)
	capsule := run(true)
	if capsule >= multi {
		t.Errorf("capsule (%d cyc) not cheaper than multi-region (%d cyc)", capsule, multi)
	}
}

func TestCapsuleThreadStacksFromHeap(t *testing.T) {
	src := `module "capthreads"
global @acc : [2 x i64]
func @worker(%arg: ptr) -> i64 {
entry:
  %idx = ptrtoint ptr %arg to i64
  %p = gep i64, @acc, %idx
  store i64 7, %p
  ret i64 0
}
func @thread_spawn(%fn: ptr, %arg: ptr) -> i64
func @thread_join(%tid: i64) -> void
func @main() -> i64 {
entry:
  %a1 = inttoptr i64 1 to ptr
  %t = call i64 @thread_spawn(ptr @worker, ptr %a1)
  call void @thread_join(i64 %t)
  %p = gep i64, @acc, 1
  %v = load i64, %p
  ret i64 %v
}`
	m := compile(t, src, passes.LevelGuardsOnly)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 21
	cfg.StackBytes = 1 << 16
	cfg.Capsule = true
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Errorf("threaded capsule result = %d, want 7", ret)
	}
	if v.Process().Regions.Len() != 1 {
		t.Error("spawning a thread broke the single-region capsule")
	}
}

func TestSwapOutAndTransparentSwapIn(t *testing.T) {
	v := loadChase(t, false)
	swaps := 0
	v.SetMovePolicy(4000, func() error {
		// Evict the most-escaped heap allocation; execution must swap it
		// back in transparently at the next guarded use.
		base, _, ok := v.Runtime().WorstCaseHeapAllocation(v.heap.base, v.heap.end)
		if !ok {
			return nil
		}
		if _, err := v.SwapOutAllocation(base); err != nil {
			return err
		}
		swaps++
		return nil
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	checkAllLaps(t, v)
	if swaps == 0 {
		t.Fatal("no swap-outs happened")
	}
	st := v.Runtime().Stats
	if st.SwapIns.Get() != st.SwapOuts.Get() {
		t.Errorf("swap-ins %d != swap-outs %d", st.SwapIns.Get(), st.SwapOuts.Get())
	}
	if err := v.Runtime().Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSwapPoisonEncoding(t *testing.T) {
	p := runtimeSwapPoison(12, 345)
	slot, off, ok := runtime.DecodeSwapPoison(p)
	if !ok || slot != 12 || off != 345 {
		t.Errorf("decode = (%d,%d,%v), want (12,345,true)", slot, off, ok)
	}
	if _, _, ok := runtime.DecodeSwapPoison(0x1000); ok {
		t.Error("ordinary address decoded as swap poison")
	}
}

// runtimeSwapPoison mirrors the runtime's encoding for the test.
func runtimeSwapPoison(slot, off uint64) uint64 {
	return 0xFFFF_8000_0000_0000 | 1<<32 | slot<<16 | off
}

func TestGuardMechanismsUnderCapsule(t *testing.T) {
	for _, mech := range []guard.Mechanism{guard.MechRange, guard.MechMPX, guard.MechIfTree} {
		m := compile(t, chaseSrc, passes.LevelGuardsOpt)
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 24
		cfg.HeapBytes = 1 << 21
		cfg.Capsule = true
		cfg.GuardMech = mech
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			t.Fatalf("mech %v: %v", mech, err)
		}
		checkAllLaps(t, v)
	}
}

// Regression: with an empty stack, sp == stackTop is numerically the base
// of whatever the kernel placed just above the stack. Moving that adjacent
// page repeatedly must not drag the stack pointer along with it (it once
// did, corrupting the first alloca after thousands of moves).
func TestMovesOfAdjacentPagesDoNotCorruptSP(t *testing.T) {
	src := `module "spguard"
global @a : [4096 x i64]
func @main() -> i64 {
entry:
  br ^warm
warm:
  %i = phi i64 [0, ^entry], [%i1, ^warm]
  %p = gep i64, @a, %i
  store i64 %i, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 4096
  condbr %c, ^warm, ^late
late:
  %acc = alloca i64, 1
  store i64 41, %acc
  %v = load i64, %acc
  %v1 = add i64 %v, 1
  ret i64 %v1
}`
	m := compile(t, src, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 19
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Move constantly during the warm loop, long before the alloca runs.
	v.SetMovePolicy(500, func() error { return v.InjectWorstCaseMove() })
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("run with dense moves: %v", err)
	}
	if ret != 42 {
		t.Errorf("result = %d, want 42", ret)
	}
	if v.Kernel().Stats.PageMoves.Get() == 0 {
		t.Fatal("no moves happened")
	}
}
