package vm

import (
	"testing"

	"carat/internal/guard"
	"carat/internal/passes"
)

// Exact-count tests for the closure tier's deopt and inline-cache
// machinery. The counting model (see closure.go): one deopt per compiled
// activation live when the region epoch bumps (the innermost bails at its
// next block head, each compiled caller at its post-call check), one deopt
// per stale-entry recompile, and one per compile refusal (which pins the
// function to the predecode tier permanently).

// closureWorkerSrc calls @work 100 times through one call site, so the
// site's inline cache sees exactly one miss and 99 hits.
const closureWorkerSrc = `module "closworker"
global @a : [64 x i64]
func @work(%i: i64) -> i64 {
entry:
  %m = and i64 %i, 63
  %p = gep i64, @a, %m
  store i64 %i, %p
  %v = load i64, %p
  ret i64 %v
}
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %acc = phi i64 [0, ^entry], [%acc1, ^loop]
  %v = call i64 @work(i64 %i)
  %acc1 = add i64 %acc, %v
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 100
  condbr %c, ^loop, ^done
done:
  ret i64 %acc1
}`

// closureLoopSrc is a call-free main: exactly one compiled activation is
// ever live, so an injected epoch bump must cost exactly one deopt.
const closureLoopSrc = `module "closloop"
global @a : [64 x i64]
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %acc = phi i64 [0, ^entry], [%acc1, ^loop]
  %m = and i64 %i, 63
  %p = gep i64, @a, %m
  store i64 %i, %p
  %v = load i64, %p
  %acc1 = add i64 %acc, %v
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 300
  condbr %c, ^loop, ^done
done:
  ret i64 %acc1
}`

// closureRun loads src with the closure tier on, applies tweak, runs, and
// returns the VM and result.
func closureRun(t *testing.T, src string, lvl passes.Level, tweak func(*VM)) (*VM, int64) {
	t.Helper()
	m := compile(t, src, lvl)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	cfg.Closure = true
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tweak != nil {
		tweak(v)
	}
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, ret
}

// TestClosureInlineCacheExactCounts: a hot monomorphic call site misses
// once (compiling the callee) and hits on every subsequent call; nothing
// deopts in a move-free run.
func TestClosureInlineCacheExactCounts(t *testing.T) {
	v, ret := closureRun(t, closureWorkerSrc, passes.LevelTracking, nil)
	if want := int64(100 * 99 / 2); ret != want {
		t.Fatalf("ret = %d, want %d", ret, want)
	}
	blocks, deopts, icHits, icMisses := v.ClosureStats()
	// main has 3 blocks (entry/loop/done), work has 1.
	if blocks != 4 {
		t.Errorf("blocks = %d, want 4 (main 3 + work 1)", blocks)
	}
	if deopts != 0 {
		t.Errorf("deopts = %d, want 0 (no epoch bumps)", deopts)
	}
	if icMisses != 1 {
		t.Errorf("ic_misses = %d, want 1 (first call compiles @work)", icMisses)
	}
	if icHits != 99 {
		t.Errorf("ic_hits = %d, want 99", icHits)
	}
	// The same counters must surface through the published metrics.
	if got := v.Obs().Counter("carat.vm.closure.ic_hits").Get(); got != icHits {
		t.Errorf("carat.vm.closure.ic_hits = %d, want %d", got, icHits)
	}
	if got := v.Obs().Counter("carat.vm.closure.deopts").Get(); got != deopts {
		t.Errorf("carat.vm.closure.deopts = %d, want %d", got, deopts)
	}
}

// TestClosureDeoptOnEpochBumpExactlyOnce: a single region grant mid-run
// (an epoch bump, the same signal page moves raise) deopts the single
// live compiled activation exactly once, and the result still matches the
// predecode tier.
func TestClosureDeoptOnEpochBumpExactlyOnce(t *testing.T) {
	m := compile(t, closureLoopSrc, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	want, err := func() (int64, error) {
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return v.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}

	granted := false
	v, ret := closureRun(t, closureLoopSrc, passes.LevelTracking, func(v *VM) {
		v.SetMovePolicy(500, func() error {
			if granted {
				return nil
			}
			granted = true
			_, err := v.Process().GrantRegion(4096, guard.PermRW)
			return err
		})
	})
	if !granted {
		t.Fatal("move policy never fired; program too short")
	}
	if ret != want {
		t.Errorf("ret = %d, want %d (predecode tier)", ret, want)
	}
	blocks, deopts, _, _ := v.ClosureStats()
	if deopts != 1 {
		t.Errorf("deopts = %d, want exactly 1 (one bump, one live activation)", deopts)
	}
	// main never re-enters after deopting mid-activation: no recompile.
	if blocks != 3 {
		t.Errorf("blocks = %d, want 3 (entry/loop/done, compiled once)", blocks)
	}
}

// TestClosureDeoptOnForwardingWindow: OpenForward/FlipForward/CloseForward
// each bump the region epoch; a full window cycled inside one safepoint
// costs the live activation exactly one deopt (it checks the stamp once)
// and the program result is unperturbed.
func TestClosureDeoptOnForwardingWindow(t *testing.T) {
	m := compile(t, closureLoopSrc, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	want, err := func() (int64, error) {
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return v.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}

	cycled := false
	v, ret := closureRun(t, closureLoopSrc, passes.LevelTracking, func(v *VM) {
		src, err := v.Process().GrantRegion(4096, guard.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := v.Process().GrantRegion(4096, guard.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		rs := v.Process().Regions
		v.SetMovePolicy(500, func() error {
			if cycled {
				return nil
			}
			cycled = true
			if err := rs.OpenForward(src, dst, 4096); err != nil {
				return err
			}
			rs.FlipForward()
			rs.CloseForward()
			return nil
		})
	})
	if !cycled {
		t.Fatal("move policy never fired; program too short")
	}
	if ret != want {
		t.Errorf("ret = %d, want %d (predecode tier)", ret, want)
	}
	_, deopts, _, _ := v.ClosureStats()
	if deopts != 1 {
		t.Errorf("deopts = %d, want exactly 1 (stamp checked once per block head)", deopts)
	}
}

// TestClosureRefusesUndecodableShapes: a dynamic struct-index GEP carries
// the predecoder's fallback flag, so the closure compiler must refuse the
// whole function — exactly one deopt, zero blocks, and the predecode tier
// produces the result.
func TestClosureRefusesUndecodableShapes(t *testing.T) {
	const src = `module "dynstruct"
global @s : {i64, i64}
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %f = and i64 %i, 1
  %p = gep {i64, i64}, @s, 0, %f
  store i64 %i, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 8
  condbr %c, ^loop, ^done
done:
  %p0 = gep {i64, i64}, @s, 0, 0
  %v0 = load i64, %p0
  %p1 = gep {i64, i64}, @s, 0, 1
  %v1 = load i64, %p1
  %r = add i64 %v0, %v1
  ret i64 %r
}`
	m := compile(t, src, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	want, err := func() (int64, error) {
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return v.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}

	v, ret := closureRun(t, src, passes.LevelTracking, nil)
	if ret != want {
		t.Errorf("ret = %d, want %d (predecode tier)", ret, want)
	}
	blocks, deopts, icHits, icMisses := v.ClosureStats()
	if blocks != 0 {
		t.Errorf("blocks = %d, want 0 (compile refused)", blocks)
	}
	if deopts != 1 {
		t.Errorf("deopts = %d, want exactly 1 (one refusal)", deopts)
	}
	if icHits != 0 || icMisses != 0 {
		t.Errorf("ic stats = %d/%d, want 0/0 (no compiled call sites)", icHits, icMisses)
	}
}

// TestClosureReentryAfterDeopt: after an epoch bump with two compiled
// activations live (main and @work's compiled body reachable), the tier
// recovers — @work recompiles and execution returns to compiled code.
// Exactly two deopts (the bump costs one per compiled activation or one
// plus a stale-entry recompile, depending on where the safepoint lands —
// both schedules total two) and exactly one recompiled block.
func TestClosureReentryAfterDeopt(t *testing.T) {
	granted := false
	v, ret := closureRun(t, closureWorkerSrc, passes.LevelTracking, func(v *VM) {
		v.SetMovePolicy(500, func() error {
			if granted {
				return nil
			}
			granted = true
			_, err := v.Process().GrantRegion(4096, guard.PermRW)
			return err
		})
	})
	if !granted {
		t.Fatal("move policy never fired; program too short")
	}
	if want := int64(100 * 99 / 2); ret != want {
		t.Fatalf("ret = %d, want %d", ret, want)
	}
	blocks, deopts, icHits, icMisses := v.ClosureStats()
	if deopts != 2 {
		t.Errorf("deopts = %d, want exactly 2", deopts)
	}
	// 4 first-compile blocks + @work's single block recompiled once.
	if blocks != 5 {
		t.Errorf("blocks = %d, want 5 (4 initial + 1 recompile of @work)", blocks)
	}
	// Once main's activation deopts it finishes on the predecode tier, so
	// the call site's cache is only consulted up to the bump: exactly the
	// one cold miss, and strictly fewer than the move-free run's 99 hits.
	if icMisses != 1 {
		t.Errorf("ic_misses = %d, want 1 (only the cold miss)", icMisses)
	}
	if icHits == 0 || icHits >= 99 {
		t.Errorf("ic_hits = %d, want in [1, 98] (site hot, then abandoned at the bump)", icHits)
	}
}

// TestClosureParityUnderInjectedMoves is the belt-and-braces end-to-end
// leg: worst-case page moves (real epoch bumps, not synthetic grants)
// leave the closure tier's result and modeled clock identical to the
// predecode tier, while deopts are actually exercised.
func TestClosureParityUnderInjectedMoves(t *testing.T) {
	runTier := func(closure bool) (*VM, int64) {
		m := compile(t, closureWorkerSrc, passes.LevelTracking)
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 23
		cfg.HeapBytes = 1 << 19
		cfg.Closure = closure
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v.SetMovePolicy(400, func() error { return v.InjectWorstCaseMove() })
		ret, err := v.Run()
		if err != nil {
			t.Fatalf("closure=%v: %v", closure, err)
		}
		return v, ret
	}
	pv, pret := runTier(false)
	cv, cret := runTier(true)
	if pret != cret {
		t.Errorf("ret: predecode %d, closure %d", pret, cret)
	}
	if pv.Instrs != cv.Instrs || pv.Cycles != cv.Cycles {
		t.Errorf("model diverged: instrs %d/%d, cycles %d/%d",
			pv.Instrs, cv.Instrs, pv.Cycles, cv.Cycles)
	}
	if pv.Kernel().Mem.Checksum() != cv.Kernel().Mem.Checksum() {
		t.Error("physical memory checksums diverged")
	}
	_, deopts, _, _ := cv.ClosureStats()
	if deopts == 0 {
		t.Error("no deopts under worst-case moves — epoch stamping not exercised")
	}
}
