package vm

import (
	"encoding/json"
	"strings"
	"testing"

	"carat/internal/guard"
	"carat/internal/passes"
	"carat/internal/runtime"
	"carat/internal/worldtest"
)

// The incremental-move parity matrix: the bounded-pause protocol must be
// observationally identical to the legacy full-stop protocol — same program
// results, same modeled cycle clock, same physical memory image, same
// metrics — except for the pause-attribution metrics themselves, which are
// the whole point of the mode.

// pauseMetric reports whether a metric name is pause attribution: the pause
// histograms (all causes) and the batch-window counter. These are the only
// metrics allowed to differ between the legacy and incremental protocols.
func pauseMetric(name string) bool {
	return strings.HasPrefix(name, runtime.PauseHist) || name == "carat.runtime.batch_pauses"
}

// tierMetric reports whether a metric name is execution-tier bookkeeping:
// the closure tier's own counters exist only when that tier is enabled, and
// deopt/recompile counts legitimately differ between the legacy and
// incremental protocols (incremental phases bump the region epoch more
// often). Everything else must match byte-for-byte across tiers.
func tierMetric(name string) bool {
	return strings.HasPrefix(name, "carat.vm.closure.")
}

// seedDigest is everything one fuzz-seed run must reproduce across modes.
type seedDigest struct {
	ret     int64
	cycles  uint64
	memSum  uint64
	metrics string
}

// runSeedDigest runs a fuzz seed under worst-case page moves and digests
// the observable outcome, excluding pause-attribution and tier-bookkeeping
// metrics.
func runSeedDigest(t *testing.T, seed int64, incremental, closure bool) seedDigest {
	t.Helper()
	m := genProgram(seed)
	pl := passes.Build(passes.LevelTracking)
	if err := pl.Run(m); err != nil {
		t.Fatalf("seed %d: passes: %v", seed, err)
	}
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	cfg.GuardMech = guard.MechRange
	cfg.Incremental = incremental
	cfg.Closure = closure
	cfg.MoveBatch = runtime.MinMoveBatch // smallest batches = most boundaries
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	v.SetMovePolicy(750, func() error { return v.InjectWorstCaseMove() })
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("seed %d (incremental=%v closure=%v): run: %v", seed, incremental, closure, err)
	}

	snap := v.Obs().Snapshot()
	for name := range snap.Counters {
		if pauseMetric(name) || tierMetric(name) {
			delete(snap.Counters, name)
		}
	}
	for name := range snap.Histograms {
		if pauseMetric(name) || tierMetric(name) {
			delete(snap.Histograms, name)
		}
	}
	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return seedDigest{
		ret:     ret,
		cycles:  v.Cycles,
		memSum:  v.Kernel().Mem.Checksum(),
		metrics: string(js),
	}
}

// TestIncrementalParityMatrix runs the existing differential fuzz seeds
// under {legacy, incremental} x {predecode, closure} and requires
// byte-identical results: return value, modeled cycle clock, physical
// memory checksum, and the full metrics snapshot minus pause attribution
// and tier bookkeeping.
func TestIncrementalParityMatrix(t *testing.T) {
	legs := []struct {
		name                 string
		incremental, closure bool
	}{
		{"incremental", true, false},
		{"closure", false, true},
		{"incremental+closure", true, true},
	}
	for seed := int64(100); seed <= 112; seed++ {
		legacy := runSeedDigest(t, seed, false, false)
		for _, leg := range legs {
			got := runSeedDigest(t, seed, leg.incremental, leg.closure)
			if legacy.ret != got.ret {
				t.Errorf("seed %d: ret %d (legacy) != %d (%s)", seed, legacy.ret, got.ret, leg.name)
			}
			if legacy.cycles != got.cycles {
				t.Errorf("seed %d: cycles %d (legacy) != %d (%s)", seed, legacy.cycles, got.cycles, leg.name)
			}
			if legacy.memSum != got.memSum {
				t.Errorf("seed %d: memory checksum %#x (legacy) != %#x (%s)", seed, legacy.memSum, got.memSum, leg.name)
			}
			if legacy.metrics != got.metrics {
				t.Errorf("seed %d: metrics diverge beyond pause attribution (%s):\n legacy %s\n %s %s",
					seed, leg.name, legacy.metrics, leg.name, got.metrics)
			}
		}
	}
}

// TestIncrementalPauseBoundUnderMoves: with the incremental protocol on,
// no recorded move pause may exceed PauseBound(batch) — while the legacy
// run of the same seed must blow through it (otherwise the fixture is too
// small to mean anything).
func TestIncrementalPauseBoundUnderMoves(t *testing.T) {
	const seed = 103 // heap-using seed with worst-case moves
	batch := runtime.MinMoveBatch
	bound := runtime.PauseBound(batch)
	moveHist := runtime.PauseHist + ".move"

	for _, incremental := range []bool{false, true} {
		m := genProgram(seed)
		pl := passes.Build(passes.LevelTracking)
		if err := pl.Run(m); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 23
		cfg.HeapBytes = 1 << 19
		cfg.Incremental = incremental
		cfg.MoveBatch = batch
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v.SetMovePolicy(750, func() error { return v.InjectWorstCaseMove() })
		if _, err := v.Run(); err != nil {
			t.Fatal(err)
		}
		hist := v.Obs().Histogram(moveHist).Snapshot()
		if hist.Count == 0 {
			t.Fatalf("incremental=%v: no move pauses recorded; fixture moved nothing", incremental)
		}
		if incremental && hist.Max > bound {
			t.Errorf("incremental move pause max %d exceeds PauseBound(%d) = %d", hist.Max, batch, bound)
		}
		if !incremental && hist.Max <= bound {
			t.Errorf("legacy move pause max %d within the incremental bound %d — fixture too small", hist.Max, bound)
		}
	}
}

// TestSchedulerWorldConformance drives the VM's real scheduler through the
// shared BoundedWorld conformance suite, mid-run, with live threads parked
// at a safepoint — the exact state HandleMove sees.
func TestSchedulerWorldConformance(t *testing.T) {
	m := genProgram(1)
	pl := passes.Build(passes.LevelTracking)
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	v.SetMovePolicy(500, func() error {
		if !ran {
			ran = true
			worldtest.Conformance(t, "vm.scheduler", v.sched)
		}
		return nil
	})
	if _, err := v.Run(); err != nil {
		t.Fatalf("run with mid-flight conformance: %v", err)
	}
	if !ran {
		t.Fatal("conformance suite never ran; program too short for the move policy period")
	}
}

// TestForwardingWindowOnAccessPath drives the epoch-barrier read path in
// translate directly: with a window open, CARAT-mode accesses to patched
// (destination-naming) addresses are forwarded back to the source before
// the copy, and stale source addresses forward to the destination after the
// flip. The VM never hits this live under the baton discipline, so the unit
// test is the coverage.
func TestForwardingWindowOnAccessPath(t *testing.T) {
	m := genProgram(2)
	pl := passes.Build(passes.LevelTracking)
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := v.Process().Regions
	src, err := v.Process().GrantRegion(4096, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := v.Process().GrantRegion(4096, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	v.Kernel().Mem.Store64(src, 0xFEED)

	if pa, err := v.translate(dst, 8, guard.PermRead); err != nil || pa != dst {
		t.Fatalf("identity translate with no window: %#x, %v", pa, err)
	}
	if err := rs.OpenForward(src, dst, 4096); err != nil {
		t.Fatal(err)
	}
	// Before the copy: patched pointers name dst, data lives at src.
	pa, err := v.translate(dst+16, 8, guard.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if pa != src+16 {
		t.Errorf("pre-flip access to dst+16 translated to %#x, want src+16 %#x", pa, src+16)
	}
	rs.FlipForward()
	// After the copy: stale pointers name src, data lives at dst.
	pa, err = v.translate(src+24, 8, guard.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if pa != dst+24 {
		t.Errorf("post-flip access to src+24 translated to %#x, want dst+24 %#x", pa, dst+24)
	}
	rs.CloseForward()
	if pa, err := v.translate(src, 8, guard.PermRead); err != nil || pa != src {
		t.Fatalf("identity translate after close: %#x, %v", pa, err)
	}
}
