package vm

import (
	"math/rand"
	"testing"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/passes"
)

// Differential fuzzing: generate random (but well-formed and memory-safe)
// programs and check the suite-wide invariant — every pipeline level, every
// guard mechanism, and concurrent page moves all compute the same result.
// This is the strongest correctness evidence for the guard optimizations
// and the move engine: any unsound hoist/merge/eliminate or mispatched
// pointer shows up as an output mismatch or a spurious fault.

// genProgram builds a random program from a seed. All memory accesses are
// mask-bounded so the program is memory-safe by construction; indices mix
// loop induction variables, loaded values, and RNG state.
func genProgram(seed int64) *ir.Module {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule("fuzz")
	malloc := m.DeclareFunc(ir.FnMalloc, ir.Ptr, ir.I64)
	freeFn := m.DeclareFunc(ir.FnFree, ir.Void, ir.Ptr)

	const arrLen = 256 // power of two for cheap masking
	nGlobals := 1 + rng.Intn(3)
	var globals []*ir.Global
	for i := 0; i < nGlobals; i++ {
		globals = append(globals, m.AddGlobal("g"+string(rune('0'+i)), ir.ArrayOf(ir.I64, arrLen)))
	}
	slot := m.AddGlobal("slot", ir.Ptr)

	f := m.AddFunc("main", ir.I64)
	b := ir.NewBuilder(f)

	// Optionally allocate a heap buffer and escape it.
	var heapBuf ir.Value
	useHeap := rng.Intn(2) == 0
	if useHeap {
		heapBuf = b.Call(malloc, b.I64(arrLen*8))
		b.Store(heapBuf, slot)
	}

	// acc accumulates everything the program computes.
	acc := b.Alloca(ir.I64, nil)
	b.Store(b.I64(int64(rng.Intn(100))), acc)

	arrays := func() ir.Value {
		if useHeap && rng.Intn(3) == 0 {
			return b.Load(ir.Ptr, slot)
		}
		return globals[rng.Intn(len(globals))]
	}

	// Random statement sequence with nested loops.
	var emit func(depth int, iv ir.Value)
	emit = func(depth int, iv ir.Value) {
		stmts := 2 + rng.Intn(4)
		for s := 0; s < stmts; s++ {
			switch choice := rng.Intn(6); {
			case choice == 0 && depth < 2:
				// Nested counted loop.
				trips := int64(2 + rng.Intn(8))
				b.Loop(b.I64(0), b.I64(trips), b.I64(1), func(i ir.Value) {
					emit(depth+1, i)
				})
			case choice == 1 && iv != nil:
				// Store f(iv) into a random array at a masked index.
				arr := arrays()
				idx := b.And(b.Add(iv, b.I64(int64(rng.Intn(64)))), b.I64(arrLen-1))
				val := b.Add(b.Mul(iv, b.I64(int64(1+rng.Intn(5)))), b.I64(int64(rng.Intn(9))))
				b.Store(val, b.GEP(ir.I64, arr, idx))
			case choice == 2:
				// Load from a masked random index, fold into acc.
				arr := arrays()
				var idx ir.Value = b.I64(int64(rng.Intn(arrLen)))
				if iv != nil && rng.Intn(2) == 0 {
					idx = b.And(iv, b.I64(arrLen-1))
				}
				x := b.Load(ir.I64, b.GEP(ir.I64, arr, idx))
				cur := b.Load(ir.I64, acc)
				b.Store(b.Add(cur, x), acc)
			case choice == 3:
				// Pure arithmetic on acc.
				cur := b.Load(ir.I64, acc)
				ops := []func(a, c ir.Value) *ir.Instr{b.Add, b.Sub, b.Xor, b.Mul, b.Or, b.And}
				r := ops[rng.Intn(len(ops))](cur, b.I64(int64(rng.Intn(1000)+1)))
				b.Store(r, acc)
			case choice == 4 && iv != nil:
				// Conditional accumulate via select.
				cur := b.Load(ir.I64, acc)
				c := b.ICmp(ir.PredLT, b.And(iv, b.I64(7)), b.I64(int64(rng.Intn(8))))
				b.Store(b.Select(c, b.Add(cur, b.I64(3)), cur), acc)
			default:
				// Array-to-array copy at masked indices.
				src, dst := arrays(), arrays()
				i1 := b.I64(int64(rng.Intn(arrLen)))
				i2 := b.I64(int64(rng.Intn(arrLen)))
				x := b.Load(ir.I64, b.GEP(ir.I64, src, i1))
				b.Store(x, b.GEP(ir.I64, dst, i2))
			}
		}
	}
	// Top-level loop so guard optimizations have something to chew on.
	b.Loop(b.I64(0), b.I64(int64(8+rng.Intn(24))), b.I64(1), func(i ir.Value) {
		emit(0, i)
	})

	// Checksum all arrays into the result.
	sum := b.Load(ir.I64, acc)
	for _, g := range globals {
		b.Loop(b.I64(0), b.I64(arrLen), b.I64(1), func(i ir.Value) {
			x := b.Load(ir.I64, b.GEP(ir.I64, g, i))
			cur := b.Load(ir.I64, acc)
			b.Store(b.Add(cur, b.Mul(x, b.Add(i, b.I64(1)))), acc)
		})
	}
	_ = sum
	if useHeap {
		hb := b.Load(ir.Ptr, slot)
		b.Loop(b.I64(0), b.I64(arrLen), b.I64(1), func(i ir.Value) {
			x := b.Load(ir.I64, b.GEP(ir.I64, hb, i))
			cur := b.Load(ir.I64, acc)
			b.Store(b.Xor(cur, b.Add(x, i)), acc)
		})
		b.Call(freeFn, hb)
	}
	b.Ret(b.Load(ir.I64, acc))
	if err := m.Verify(); err != nil {
		panic(err)
	}
	return m
}

// runSeed compiles the seed's program at the given level and runs it on
// the default (predecode+xcache) engine.
func runSeed(t *testing.T, seed int64, lvl passes.Level, mech guard.Mechanism,
	tweak func(*VM)) int64 {
	return runSeedEngine(t, seed, lvl, mech, false, tweak)
}

// runSeedEngine is runSeed with an engine choice: closure selects the
// closure compilation tier on top of the default config.
func runSeedEngine(t *testing.T, seed int64, lvl passes.Level, mech guard.Mechanism,
	closure bool, tweak func(*VM)) int64 {
	t.Helper()
	m := genProgram(seed)
	pl := passes.Build(lvl)
	if err := pl.Run(m); err != nil {
		t.Fatalf("seed %d: passes: %v", seed, err)
	}
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	cfg.GuardMech = mech
	cfg.Closure = closure
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	if tweak != nil {
		tweak(v)
	}
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("seed %d (closure=%v): run: %v", seed, closure, err)
	}
	return ret
}

func TestDifferentialPipelineLevels(t *testing.T) {
	levels := []passes.Level{
		passes.LevelNone, passes.LevelGuardsOnly, passes.LevelGuardsOpt,
		passes.LevelTracking, passes.LevelTrackingOnly,
	}
	for seed := int64(1); seed <= 40; seed++ {
		want := runSeed(t, seed, passes.LevelNone, guard.MechRange, nil)
		for _, lvl := range levels[1:] {
			if got := runSeed(t, seed, lvl, guard.MechRange, nil); got != want {
				t.Errorf("seed %d level %d: got %d, want %d", seed, lvl, got, want)
			}
			if got := runSeedEngine(t, seed, lvl, guard.MechRange, true, nil); got != want {
				t.Errorf("seed %d level %d closure: got %d, want %d", seed, lvl, got, want)
			}
		}
	}
}

func TestDifferentialGuardMechanisms(t *testing.T) {
	mechs := []guard.Mechanism{guard.MechRange, guard.MechMPX, guard.MechIfTree,
		guard.MechBinarySearch, guard.MechLinear}
	for seed := int64(50); seed <= 65; seed++ {
		want := runSeed(t, seed, passes.LevelGuardsOpt, guard.MechRange, nil)
		for _, mech := range mechs[1:] {
			if got := runSeed(t, seed, passes.LevelGuardsOpt, mech, nil); got != want {
				t.Errorf("seed %d mech %v: got %d, want %d", seed, mech, got, want)
			}
			if got := runSeedEngine(t, seed, passes.LevelGuardsOpt, mech, true, nil); got != want {
				t.Errorf("seed %d mech %v closure: got %d, want %d", seed, mech, got, want)
			}
		}
	}
}

func TestDifferentialUnderPageMoves(t *testing.T) {
	for seed := int64(100); seed <= 125; seed++ {
		want := runSeed(t, seed, passes.LevelTracking, guard.MechRange, nil)
		movePolicy := func(v *VM) {
			v.SetMovePolicy(750, func() error { return v.InjectWorstCaseMove() })
		}
		if got := runSeed(t, seed, passes.LevelTracking, guard.MechRange, movePolicy); got != want {
			t.Errorf("seed %d with page moves: got %d, want %d", seed, got, want)
		}
		if got := runSeedEngine(t, seed, passes.LevelTracking, guard.MechRange, true, movePolicy); got != want {
			t.Errorf("seed %d with page moves closure: got %d, want %d", seed, got, want)
		}
	}
}

func TestDifferentialUnderAllocationMoves(t *testing.T) {
	for seed := int64(200); seed <= 220; seed++ {
		want := runSeed(t, seed, passes.LevelTracking, guard.MechRange, nil)
		movePolicy := func(v *VM) {
			v.SetMovePolicy(600, func() error {
				if err := v.InjectWorstCaseAllocationMove(); err != nil {
					return nil // seed may have no heap allocations
				}
				return nil
			})
		}
		if got := runSeed(t, seed, passes.LevelTracking, guard.MechRange, movePolicy); got != want {
			t.Errorf("seed %d with allocation moves: got %d, want %d", seed, got, want)
		}
		if got := runSeedEngine(t, seed, passes.LevelTracking, guard.MechRange, true, movePolicy); got != want {
			t.Errorf("seed %d with allocation moves closure: got %d, want %d", seed, got, want)
		}
	}
}

func TestDifferentialCapsule(t *testing.T) {
	for seed := int64(300); seed <= 315; seed++ {
		want := runSeed(t, seed, passes.LevelGuardsOpt, guard.MechRange, nil)
		m := genProgram(seed)
		pl := passes.Build(passes.LevelGuardsOpt)
		if err := pl.Run(m); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 23
		cfg.HeapBytes = 1 << 19
		cfg.StackBytes = 1 << 17 // capsule stacks are carved from the heap
		cfg.Capsule = true
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.Run()
		if err != nil {
			t.Fatalf("seed %d capsule: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d capsule: got %d, want %d", seed, got, want)
		}
	}
}

// DESIGN.md invariant: guard optimization must never ADMIT an access the
// unoptimized program would have trapped. Programs that forge
// out-of-region pointers (in straight-line code, inside loops, and via
// bounded-looking arithmetic on forged bases) must fault at every
// optimization level.
func TestOptimizedGuardsStillTrapIllegalAccesses(t *testing.T) {
	progs := []string{
		// Straight-line forged load.
		`module "p1"
func @main() -> i64 {
entry:
  %p = inttoptr i64 87654321000 to ptr
  %v = load i64, %p
  ret i64 %v
}`,
		// Forged base walked in a loop: hoisting/merging must not lose
		// the trap.
		`module "p2"
func @main() -> i64 {
entry:
  %p = inttoptr i64 87654321000 to ptr
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %s = phi i64 [0, ^entry], [%s1, ^loop]
  %q = gep i64, %p, %i
  %v = load i64, %q
  %s1 = add i64 %s, %v
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 16
  condbr %c, ^loop, ^done
done:
  ret i64 %s1
}`,
		// Masked index over a forged base: the bounded-index merge must
		// still guard the (illegal) window.
		`module "p3"
func @main() -> i64 {
entry:
  %p = inttoptr i64 87654321000 to ptr
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %m = and i64 %i, 7
  %q = gep i64, %p, %m
  store i64 %i, %q
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 16
  condbr %c, ^loop, ^done
done:
  ret i64 0
}`,
	}
	for pi, src := range progs {
		for _, lvl := range []passes.Level{passes.LevelGuardsOnly, passes.LevelGuardsOpt, passes.LevelTracking} {
			for _, closure := range []bool{false, true} {
				m := compile(t, src, lvl)
				cfg := DefaultConfig()
				cfg.MemBytes = 1 << 22
				cfg.HeapBytes = 1 << 18
				cfg.Closure = closure
				v, err := Load(m, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := v.Run(); err == nil {
					t.Errorf("program %d at level %d (closure=%v): illegal access was admitted",
						pi+1, lvl, closure)
				}
			}
		}
	}
}
