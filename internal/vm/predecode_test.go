package vm

import (
	"fmt"
	"reflect"
	"testing"

	"carat/internal/guard"
	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/passes"
)

// Engine parity: the predecoded engine, the guard/translation cache, and
// the closure compilation tier are host-speed optimizations ONLY. Every
// modeled observable — result, output, instruction count, cycle count,
// per-category profile, guard evaluator stats, physical memory image —
// must be byte-identical across the full {Predecode, XCache, Closure}
// on/off matrix, including under injected page moves, allocation moves,
// and swap storms.

// engineResult snapshots every modeled observable of one run.
type engineResult struct {
	ret        int64
	cycles     uint64
	instrs     uint64
	checks     uint64
	evalCycles uint64
	faults     uint64
	cat        [obs.NumCategories]uint64
	output     []int64
	memSum     uint64
}

func runEngine(t *testing.T, seed int64, lvl passes.Level, mech guard.Mechanism,
	predecode, xcache, closure bool, vmTweak func(*VM)) engineResult {
	t.Helper()
	m := genProgram(seed)
	pl := passes.Build(lvl)
	if err := pl.Run(m); err != nil {
		t.Fatalf("seed %d: passes: %v", seed, err)
	}
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	cfg.GuardMech = mech
	cfg.Predecode = predecode
	cfg.XCache = xcache
	cfg.Closure = closure
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	if vmTweak != nil {
		vmTweak(v)
	}
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("seed %d (predecode=%v xcache=%v closure=%v): run: %v", seed, predecode, xcache, closure, err)
	}
	return engineResult{
		ret:        ret,
		cycles:     v.Cycles,
		instrs:     v.Instrs,
		checks:     v.GuardChecks,
		evalCycles: v.eval.Cycles,
		faults:     v.eval.Faults,
		cat:        v.Prof.Cat,
		output:     v.Output,
		memSum:     v.Kernel().Mem.Checksum(),
	}
}

// engineConfigs is the engine parity matrix: baseline, each tier alone,
// the PR-4 pair, and the closure tier with and without the xcache.
var engineConfigs = []struct{ pre, xc, clo bool }{
	{true, false, false},
	{false, true, false},
	{true, true, false},
	{true, true, true},
	{true, false, true},
}

// engineMatrix runs one seed through every engine configuration and
// requires bit-identical results.
func engineMatrix(t *testing.T, seed int64, lvl passes.Level, mech guard.Mechanism, vmTweak func(*VM)) {
	t.Helper()
	want := runEngine(t, seed, lvl, mech, false, false, false, vmTweak)
	for _, c := range engineConfigs {
		got := runEngine(t, seed, lvl, mech, c.pre, c.xc, c.clo, vmTweak)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d predecode=%v xcache=%v closure=%v diverges:\n got %+v\nwant %+v",
				seed, c.pre, c.xc, c.clo, got, want)
		}
	}
}

func TestEngineParityMatrix(t *testing.T) {
	for seed := int64(400); seed <= 420; seed++ {
		engineMatrix(t, seed, passes.LevelGuardsOpt, guard.MechRange, nil)
	}
}

func TestEngineParityAcrossMechanisms(t *testing.T) {
	mechs := []guard.Mechanism{guard.MechRange, guard.MechMPX, guard.MechIfTree,
		guard.MechBinarySearch, guard.MechLinear}
	for i, mech := range mechs {
		engineMatrix(t, int64(430+i), passes.LevelGuardsOnly, mech, nil)
	}
}

func TestEngineParityUnderPageMoves(t *testing.T) {
	for seed := int64(440); seed <= 450; seed++ {
		engineMatrix(t, seed, passes.LevelTracking, guard.MechRange, func(v *VM) {
			v.SetMovePolicy(750, func() error { return v.InjectWorstCaseMove() })
		})
	}
}

func TestEngineParityUnderAllocationMovesAndSwaps(t *testing.T) {
	for seed := int64(460); seed <= 468; seed++ {
		engineMatrix(t, seed, passes.LevelTracking, guard.MechRange, func(v *VM) {
			n := 0
			v.SetMovePolicy(900, func() error {
				n++
				if n%2 == 0 {
					_ = v.InjectWorstCaseAllocationMove()
					return nil
				}
				if base, _, ok := v.Runtime().WorstCaseHeapAllocation(v.heap.base, v.heap.end); ok {
					_, _ = v.SwapOutAllocation(base)
				}
				return nil
			})
		})
	}
}

func TestEngineParityTracksGuardStats(t *testing.T) {
	// Table-1-style evaluator statistics must be identical with and
	// without the cache — AvgCycles is derived from (Cycles, Checks),
	// both compared here explicitly on a guard-heavy program.
	a := runEngine(t, 470, passes.LevelGuardsOnly, guard.MechBinarySearch, false, false, false, nil)
	b := runEngine(t, 470, passes.LevelGuardsOnly, guard.MechBinarySearch, true, true, false, nil)
	c := runEngine(t, 470, passes.LevelGuardsOnly, guard.MechBinarySearch, true, true, true, nil)
	if a.checks != b.checks || a.evalCycles != b.evalCycles {
		t.Errorf("guard stats diverge: checks %d/%d cycles %d/%d",
			a.checks, b.checks, a.evalCycles, b.evalCycles)
	}
	if a.checks != c.checks || a.evalCycles != c.evalCycles {
		t.Errorf("closure guard stats diverge: checks %d/%d cycles %d/%d",
			a.checks, c.checks, a.evalCycles, c.evalCycles)
	}
	if a.checks == 0 {
		t.Fatal("program executed no guards")
	}
}

func TestXCacheActuallyHits(t *testing.T) {
	m := compile(t, sumSrc, passes.LevelGuardsOnly)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	cfg.XCache = true
	v, _ := run(t, m, cfg)
	hits, misses, _ := v.XCacheStats()
	if hits == 0 {
		t.Fatal("loop workload produced zero xcache hits")
	}
	if hits+misses != v.GuardChecks {
		t.Errorf("hits+misses = %d, want %d guard checks", hits+misses, v.GuardChecks)
	}
	if float64(hits)/float64(v.GuardChecks) < 0.5 {
		t.Errorf("hit rate %d/%d unexpectedly low for a tight loop", hits, v.GuardChecks)
	}
	// The counters must have been published.
	snap := v.Obs().Snapshot()
	if snap.Counters["carat.vm.xcache.hits"] != hits {
		t.Errorf("published hits = %d, want %d", snap.Counters["carat.vm.xcache.hits"], hits)
	}
}

// chaseModuleSrc builds a pointer-chasing workload with two heap
// allocations whose guarded accesses populate the xcache, so invalidation
// scope is observable per page.
const invalSrc = `module "inval"
global @slots : [4 x ptr]
func @malloc(%sz: i64) -> ptr
func @main() -> i64 {
entry:
  %a = call ptr @malloc(i64 4096)
  %b = call ptr @malloc(i64 4096)
  %p0 = gep ptr, @slots, 0
  store ptr %a, %p0
  %p1 = gep ptr, @slots, 1
  store ptr %b, %p1
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %m = and i64 %i, 255
  %qa = gep i64, %a, %m
  store i64 %i, %qa
  %qb = gep i64, %b, %m
  store i64 %i, %qb
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 2000
  condbr %c, ^loop, ^done
done:
  ret i64 0
}`

// TestXCacheInvalidationScope drives every map-changing operation against
// a VM mid-run and asserts the invalidation scope each must have:
// operations that leave the region set alone invalidate exactly the
// affected pages; region-set mutations flush everything.
func TestXCacheInvalidationScope(t *testing.T) {
	type opCase struct {
		name  string
		scope string // "pages" or "all"
		do    func(t *testing.T, v *VM, base uint64) (lo, hi uint64)
	}
	cases := []opCase{
		{"swap-out", "pages", func(t *testing.T, v *VM, base uint64) (uint64, uint64) {
			if _, err := v.SwapOutAllocation(base); err != nil {
				t.Fatal(err)
			}
			return base, base + 4096
		}},
		{"allocation-move", "pages", func(t *testing.T, v *VM, base uint64) (uint64, uint64) {
			dst := v.heap.alloc(4096)
			if dst == 0 {
				t.Fatal("heap exhausted")
			}
			if _, err := v.Runtime().MoveAllocationTo(base, dst); err != nil {
				t.Fatal(err)
			}
			return base, base + 4096
		}},
		// A kernel page move retires the source region and grants a new
		// destination region (RetireSrc -> ReleaseRegion), advancing the
		// region-set epoch: every cached walk result is stale no matter
		// its page, so the correct scope here is a full flush.
		{"page-move", "all", func(t *testing.T, v *VM, base uint64) (uint64, uint64) {
			page := base &^ (kernel.PageSize - 1)
			if _, err := v.Process().RequestMove(page, 1); err != nil {
				t.Fatal(err)
			}
			return 0, 0
		}},
		{"protect", "all", func(t *testing.T, v *VM, base uint64) (uint64, uint64) {
			page := base &^ (kernel.PageSize - 1)
			if err := v.Process().RequestProtect(page, kernel.PageSize, guard.PermRW); err != nil {
				t.Fatal(err)
			}
			return 0, 0
		}},
		{"grant", "all", func(t *testing.T, v *VM, base uint64) (uint64, uint64) {
			if _, err := v.Process().GrantRegion(kernel.PageSize, guard.PermRW); err != nil {
				t.Fatal(err)
			}
			return 0, 0
		}},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := compile(t, invalSrc, passes.LevelTracking)
			cfg := DefaultConfig()
			cfg.MemBytes = 1 << 24
			cfg.HeapBytes = 1 << 20
			v, err := Load(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fired := false
			var survivorsBefore, survivorsAfter int
			var droppedLo, droppedHi uint64
			v.SetMovePolicy(5000, func() error {
				if fired {
					return nil
				}
				fired = true
				// The running thread's cache is warm with both heap pages
				// (and stack/global pages). Apply the operation to the
				// first heap allocation and inspect what survived.
				base, _, ok := v.Runtime().WorstCaseHeapAllocation(v.heap.base, v.heap.end)
				if !ok {
					t.Fatal("no heap allocation to operate on")
				}
				tt := v.sched.threads[0]
				before := tt.xc.ValidPages()
				if len(before) == 0 {
					t.Fatal("xcache empty before operation")
				}
				droppedLo, droppedHi = c.do(t, v, base)
				after := tt.xc.ValidPages()
				survivorsBefore, survivorsAfter = len(before), len(after)
				if c.scope == "all" {
					if survivorsAfter != 0 {
						t.Errorf("%s: region-set change left %d entries live", c.name, survivorsAfter)
					}
					return nil
				}
				// Precise scope: every surviving page is outside the
				// affected range, and at least one unrelated page survived.
				for _, pg := range after {
					if pg+kernel.PageSize > droppedLo && pg < droppedHi {
						t.Errorf("%s: page %#x inside affected [%#x,%#x) survived", c.name, pg, droppedLo, droppedHi)
					}
				}
				outside := 0
				for _, pg := range before {
					if pg+kernel.PageSize <= droppedLo || pg >= droppedHi {
						outside++
					}
				}
				if outside > 0 && survivorsAfter == 0 {
					t.Errorf("%s: precise invalidation dropped unrelated pages (before %d, outside-range %d, after 0)",
						c.name, survivorsBefore, outside)
				}
				return nil
			})
			if _, err := v.Run(); err != nil {
				t.Fatal(err)
			}
			if !fired {
				t.Fatal("operation never ran")
			}
		})
	}
}

// Concurrent guarded execution against the sharded allocation table: two
// program threads hammer tracked heap memory while the move policy drives
// map changes. Run under -race; the modeled result must also be stable.
func TestConcurrentGuardedExecutionSharded(t *testing.T) {
	src := `module "mt"
func @malloc(%sz: i64) -> ptr
func @thread_spawn(%fn: ptr, %arg: ptr) -> i64
func @thread_join(%tid: i64) -> void
func @worker(%arg: ptr) -> i64 {
entry:
  %buf = call ptr @malloc(i64 2048)
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %m = and i64 %i, 255
  %q = gep i64, %buf, %m
  store i64 %i, %q
  %x = load i64, %q
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 30000
  condbr %c, ^loop, ^done
done:
  %r = gep i64, %buf, 0
  %v = load i64, %r
  ret i64 %v
}
func @main() -> i64 {
entry:
  %a1 = inttoptr i64 1 to ptr
  %a2 = inttoptr i64 2 to ptr
  %t1 = call i64 @thread_spawn(ptr @worker, ptr %a1)
  %t2 = call i64 @thread_spawn(ptr @worker, ptr %a2)
  call void @thread_join(i64 %t1)
  call void @thread_join(i64 %t2)
  ret i64 0
}`
	run1 := func() int64 {
		m := compile(t, src, passes.LevelTracking)
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 24
		cfg.HeapBytes = 1 << 20
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v.SetMovePolicy(5000, func() error { return v.InjectWorstCaseMove() })
		ret, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Runtime().Table.CheckInvariants(); err != nil {
			t.Error(err)
		}
		return ret
	}
	if a, b := run1(), run1(); a != b {
		t.Errorf("concurrent run not deterministic: %d vs %d", a, b)
	}
}

func TestPredecodeFallbackShapes(t *testing.T) {
	// A GEP with a dynamic struct index cannot be predecoded (the type
	// walk needs the value); it must fall back to the baseline
	// interpreter with identical results.
	src := `module "fb"
global @s : {i64, i64, i64}
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %f = srem i64 %i, 3
  %p = gep {i64, i64, i64}, @s, 0, %f
  store i64 %i, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 9
  condbr %c, ^loop, ^sum
sum:
  %p0 = gep {i64, i64, i64}, @s, 0, 0
  %a = load i64, %p0
  %p1 = gep {i64, i64, i64}, @s, 0, 1
  %b = load i64, %p1
  %p2 = gep {i64, i64, i64}, @s, 0, 2
  %d = load i64, %p2
  %ab = add i64 %a, %b
  %abd = add i64 %ab, %d
  ret i64 %abd
}`
	var results [2]int64
	var cycles [2]uint64
	for i, pre := range []bool{false, true} {
		m := compile(t, src, passes.LevelGuardsOpt)
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 22
		cfg.HeapBytes = 1 << 18
		cfg.Predecode = pre
		v, ret := run(t, m, cfg)
		results[i], cycles[i] = ret, v.Cycles
	}
	if results[0] != results[1] || cycles[0] != cycles[1] {
		t.Errorf("fallback shape diverges: ret %d/%d cycles %d/%d",
			results[0], results[1], cycles[0], cycles[1])
	}
	if results[0] != 6+7+8 {
		t.Errorf("result = %d, want %d", results[0], 6+7+8)
	}
}

func TestPredecodeDeterminism(t *testing.T) {
	// Two identical runs of the full-featured config must agree to the
	// cycle on a program exercising threads, tracking, and moves.
	mk := func() (int64, uint64, uint64) {
		r := runEngine(t, 480, passes.LevelTracking, guard.MechRange, true, true, true, func(v *VM) {
			v.SetMovePolicy(1000, func() error { return v.InjectWorstCaseMove() })
		})
		return r.ret, r.cycles, r.instrs
	}
	r1, c1, i1 := mk()
	r2, c2, i2 := mk()
	if r1 != r2 || c1 != c2 || i1 != i2 {
		t.Errorf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", r1, c1, i1, r2, c2, i2)
	}
}

var _ = fmt.Sprintf // keep fmt for debug scaffolding edits
