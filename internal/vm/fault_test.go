package vm

import (
	"testing"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/passes"
)

// runSeedFaulted runs a seed's program with a fault injector threaded
// through the VM and a move policy that keeps requesting worst-case moves,
// swallowing injected aborts the way mmpolicy's daemon does. Returns the
// program result and how many moves were rolled back.
func runSeedFaulted(t *testing.T, seed int64, rate float64, closure bool) (int64, uint64) {
	t.Helper()
	m := genProgram(seed)
	pl := passes.Build(passes.LevelTracking)
	if err := pl.Run(m); err != nil {
		t.Fatalf("seed %d: passes: %v", seed, err)
	}
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	cfg.GuardMech = guard.MechRange
	cfg.XCache = true
	cfg.Closure = closure
	inj := fault.New(seed, nil)
	inj.SetRate(fault.MoveAbort, rate)
	inj.SetRate(fault.PatchFail, rate)
	cfg.Fault = inj
	v, err := Load(m, cfg)
	if err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	v.SetMovePolicy(500, func() error {
		err := v.InjectWorstCaseMove()
		if fault.Injected(err) {
			return nil // rolled back; the program must not notice
		}
		return err
	})
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	return ret, v.Obs().Counter("carat.runtime.move_rollbacks").Get()
}

// TestDifferentialUnderAbortedMoves is the differential-fuzz invariant
// extended to the fault path: with the translation cache enabled and a
// high injected abort/patch-failure rate, every rolled-back move must be
// invisible to the program — same output as the clean run. This is the
// end-to-end check that rollback restores memory, escapes, and registers
// AND that the xcache drops translations minted for the aborted
// destination.
func TestDifferentialUnderAbortedMoves(t *testing.T) {
	var sawRollback bool
	for seed := int64(100); seed <= 115; seed++ {
		want := runSeed(t, seed, passes.LevelTracking, guard.MechRange, nil)
		got, rollbacks := runSeedFaulted(t, seed, 0.5, false)
		if got != want {
			t.Errorf("seed %d with aborted moves: got %d, want %d", seed, got, want)
		}
		gotClo, rollClo := runSeedFaulted(t, seed, 0.5, true)
		if gotClo != want {
			t.Errorf("seed %d with aborted moves (closure): got %d, want %d", seed, gotClo, want)
		}
		if rollbacks > 0 && rollClo > 0 {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Error("no seed exercised a rollback — injection not reaching the move path")
	}
}
