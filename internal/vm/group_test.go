package vm

import (
	hostrt "runtime"
	"testing"

	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/passes"
	"carat/internal/worldtest"
)

// groupCfg is the shared configuration for multi-process group tests:
// small per-process footprints so several arenas fit one machine, with
// every execution tier engaged.
func groupCfg() Config {
	cfg := DefaultConfig()
	cfg.HeapBytes = 1 << 19
	cfg.StackBytes = 1 << 18
	cfg.Closure = true
	return cfg
}

const groupArenaPages = 512 // 2 MB arena per process

// buildGroup assembles a group of n fuzz-generated processes, each with a
// self-move policy (kernel-initiated worst-case moves at a per-process
// period) so the ragged safepoint machinery is exercised, not idle.
func buildGroup(t testing.TB, seeds []int64) *Group {
	t.Helper()
	g := NewGroup(1 << 25)
	for i, seed := range seeds {
		m := genProgram(seed)
		pl := passes.Build(passes.LevelTracking)
		if err := pl.Run(m); err != nil {
			t.Fatalf("seed %d: passes: %v", seed, err)
		}
		v, err := g.Add("p"+string(rune('0'+i)), m, groupCfg(), groupArenaPages)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Distinct periods per process: the move pattern is a function of
		// the process's own instruction count only, never wall-clock.
		v.SetMovePolicy(700+uint64(i)*130, v.InjectWorstCaseMove)
	}
	return g
}

// runGroupAt runs a fresh group at the given GOMAXPROCS and returns the
// per-process results.
func runGroupAt(t testing.TB, gomaxprocs int, seeds []int64) []GroupResult {
	t.Helper()
	prev := hostrt.GOMAXPROCS(gomaxprocs)
	defer hostrt.GOMAXPROCS(prev)
	g := buildGroup(t, seeds)
	res := g.Run()
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("GOMAXPROCS=%d: process %s: %v", gomaxprocs, r.Name, r.Err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatalf("GOMAXPROCS=%d: %v", gomaxprocs, err)
	}
	return res
}

// TestGroupDeterminismAcrossGOMAXPROCS is the tentpole's determinism
// contract: per-process cycles, outputs, and arena digests are
// byte-identical whether the processes time-share one core or run truly
// concurrently on many — only the interleaving may change.
func TestGroupDeterminismAcrossGOMAXPROCS(t *testing.T) {
	seeds := []int64{7, 19, 40, 57}
	base := runGroupAt(t, 1, seeds)
	for _, gm := range []int{2, 8} {
		got := runGroupAt(t, gm, seeds)
		for i := range base {
			if got[i].Digest != base[i].Digest {
				t.Errorf("GOMAXPROCS=%d: process %s digest %#x, want %#x (cycles %d vs %d)",
					gm, got[i].Name, got[i].Digest, base[i].Digest,
					got[i].Cycles, base[i].Cycles)
			}
			if got[i].Ret != base[i].Ret {
				t.Errorf("GOMAXPROCS=%d: process %s ret %d, want %d",
					gm, got[i].Name, got[i].Ret, base[i].Ret)
			}
		}
	}
}

// TestGroupRaggedIsolation asserts the scalability half of the protocol:
// suspending process A (and moving its pages from outside) never blocks
// process B's block-head fast path. B runs start-to-finish while A is
// parked.
func TestGroupRaggedIsolation(t *testing.T) {
	k := kernel.NewWith(1<<25, obs.NewRegistry())

	load := func(seed int64) *VM {
		m := genProgram(seed)
		pl := passes.Build(passes.LevelTracking)
		if err := pl.Run(m); err != nil {
			t.Fatalf("seed %d: passes: %v", seed, err)
		}
		cfg := groupCfg()
		cfg.Kernel = k
		cfg.Obs = obs.NewRegistry()
		cfg.ArenaPages = groupArenaPages
		v, err := Load(m, cfg)
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		return v
	}
	vmA, vmB := load(33), load(65)
	soloRet, ok := fuzzRunEngine(t, 33, passes.LevelTracking, true, nil)
	if !ok {
		t.Fatal("solo baseline run failed")
	}

	// Start A and wait (via its move policy) until a guest thread is
	// provably mid-run at a safepoint; then the external suspension below
	// parks a live process, not an un-started one.
	started := make(chan struct{})
	signaled := false
	vmA.SetMovePolicy(500, func() error {
		if !signaled {
			signaled = true
			close(started)
		}
		return nil
	})
	aDone := make(chan struct{})
	var aRet int64
	var aErr error
	go func() {
		aRet, aErr = vmA.Run()
		close(aDone)
	}()
	<-started

	worldtest.RaggedIsolation(t, "vm.group", vmA, func() error {
		// While A is parked: move one of A's pages from this goroutine —
		// the external-mover path (suspend, mutate, resume) — and then run
		// all of B. Neither may wait on A.
		if err := vmA.InjectWorstCaseMove(); err != nil {
			return err
		}
		if _, err := vmB.Run(); err != nil {
			return err
		}
		return nil
	})

	<-aDone
	if aErr != nil {
		t.Fatalf("process A after external move: %v", aErr)
	}
	if aRet != soloRet {
		t.Errorf("process A ret %d after suspension+external move, want %d", aRet, soloRet)
	}
	if err := vmA.Release(); err != nil {
		t.Fatal(err)
	}
	if err := vmB.Release(); err != nil {
		t.Fatal(err)
	}
	if n := k.OwnedPageCount(); n != 0 {
		t.Errorf("%d pages still owned after release", n)
	}
}

// TestSchedulerSuspendConformance drives the real scheduler through the
// shared suspension contract, plus StopOwners' ragged stop-set
// construction on a live group.
func TestSchedulerSuspendConformance(t *testing.T) {
	g := buildGroup(t, []int64{7, 19})
	vmA, vmB := g.procs[0].vm, g.procs[1].vm
	worldtest.SuspendConformance(t, "vm.scheduler", vmA)

	// StopOwners over A's arena must suspend A only: B's scheduler never
	// sees a stop request.
	a := vmA.Arena()
	resume := g.StopOwners(a.Base(), a.Bytes())
	if !vmA.sched.stopReq.Load() {
		t.Error("StopOwners over A's arena did not set A's stop request")
	}
	if vmB.sched.stopReq.Load() {
		t.Error("StopOwners over A's arena set B's stop request (ragged stop leaked)")
	}
	resume()
	if vmA.sched.stopReq.Load() {
		t.Error("resume did not clear A's stop request")
	}
	res := g.Run()
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("process %s: %v", r.Name, r.Err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzGroupMoves interleaves kernel-initiated moves in two concurrent
// processes and checks per-process determinism across GOMAXPROCS. CI runs
// this target under -race: any unsynchronized cross-process access to the
// shared kernel structures is a failure even when digests happen to agree.
func FuzzGroupMoves(f *testing.F) {
	f.Add(int64(7), int64(65))
	f.Add(int64(19), int64(40))
	f.Add(int64(100), int64(210))
	f.Fuzz(func(t *testing.T, seedA, seedB int64) {
		seeds := []int64{seedA, seedB}
		base := runGroupAt(t, 1, seeds)
		got := runGroupAt(t, 2, seeds)
		for i := range base {
			if got[i].Digest != base[i].Digest {
				t.Errorf("seeds (%d,%d): process %s digest %#x at GOMAXPROCS=2, want %#x",
					seedA, seedB, got[i].Name, got[i].Digest, base[i].Digest)
			}
		}
	})
}
