package tlb

import "carat/internal/obs"

// Hierarchy models the full translation path of a modern x64 core
// (§2.1/§3): a 64-entry L1 DTLB, a 1536-entry L2 STLB, and a pagewalker
// with a paging-structure cache that skips upper levels of the radix walk
// when they were recently used. The geometry defaults follow the paper's
// description of contemporary Intel parts (64 DTLB entries; 1536 STLB
// entries on the then-current generation).
type Hierarchy struct {
	L1 *TLB
	L2 *TLB
	PT *PageTable

	// walkCache caches upper-level paging structures, indexed by the
	// PML4/PDPT/PD prefix of the VPN, skipping that many levels on a hit.
	walkCache map[uint64]int
	wcCap     int

	Stats HierStats

	// Obs backs Stats (carat.tlb.* namespace).
	Obs *obs.Registry
}

// HierStats is the hierarchy's typed view over its carat.tlb.* metrics:
// the tlb layer owns all translation-path accounting (lookups, misses,
// walks, walk cycles, translation faults). Read fields with Get().
type HierStats struct {
	Lookups    *obs.Counter
	L1Misses   *obs.Counter
	L2Misses   *obs.Counter
	Walks      *obs.Counter
	WalkCycles *obs.Counter
	Faults     *obs.Counter
}

func newHierStats(reg *obs.Registry) HierStats {
	return HierStats{
		Lookups:    reg.Counter("carat.tlb.lookups"),
		L1Misses:   reg.Counter("carat.tlb.l1_misses"),
		L2Misses:   reg.Counter("carat.tlb.l2_misses"),
		Walks:      reg.Counter("carat.tlb.walks"),
		WalkCycles: reg.Counter("carat.tlb.walk_cycles"),
		Faults:     reg.Counter("carat.tlb.faults"),
	}
}

// Cycle cost constants for the walk model. A full four-level walk touches
// four paging-structure lines; each costs an L2/LLC-latency access. With
// walk-cache hits, upper levels are skipped. This puts the average walk in
// the tens of cycles, matching the paper's measured 47-cycle average and
// ~108-cycle worst case.
const (
	cycPerWalkLevel = 26 // one paging-structure access (L2-ish latency)
	cycL2TLBProbe   = 7  // STLB probe on an L1 miss
)

// NewHierarchy builds the default hierarchy over the given page table.
// Metrics go to a private registry; use NewHierarchyWith to share one.
func NewHierarchy(pt *PageTable) *Hierarchy {
	return NewHierarchyWith(pt, nil)
}

// NewHierarchyWith is NewHierarchy with an explicit metrics registry
// (created if nil).
func NewHierarchyWith(pt *PageTable, reg *obs.Registry) *Hierarchy {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Hierarchy{
		L1:        NewTLB(64, 4),
		L2:        NewTLB(1536, 12),
		PT:        pt,
		walkCache: make(map[uint64]int),
		wcCap:     32,
		Stats:     newHierStats(reg),
		Obs:       reg,
	}
}

// Translate resolves vaddr and returns the physical address and the cycle
// cost beyond a TLB hit (0 for an L1 hit). A translation failure (page
// fault) returns ok=false.
func (h *Hierarchy) Translate(vaddr uint64) (paddr uint64, cycles uint64, ok bool) {
	h.Stats.Lookups.Inc()
	vpn := vaddr >> PageShift
	off := vaddr & (PageSize - 1)
	if ppn, hit := h.L1.Lookup(vpn); hit {
		return ppn<<PageShift | off, 0, true
	}
	h.Stats.L1Misses.Inc()
	cycles += cycL2TLBProbe
	if ppn, hit := h.L2.Lookup(vpn); hit {
		h.L1.Insert(vpn, ppn)
		return ppn<<PageShift | off, cycles, true
	}
	h.Stats.L2Misses.Inc()

	// Pagewalk with paging-structure cache: a hit on the PD prefix skips
	// the top three levels; on the PDPT prefix, two; on the PML4, one.
	h.Stats.Walks.Inc()
	levels := Levels
	for skip := Levels - 1; skip >= 1; skip-- {
		prefix := vpn >> uint(9*(Levels-1-skip)) << 8 // tag with skip count
		if got, hit := h.walkCache[prefix|uint64(skip)]; hit && got == skip {
			levels = Levels - skip
			break
		}
	}
	ppn, _, err := h.PT.Walk(vpn)
	walkCycles := uint64(levels) * cycPerWalkLevel
	cycles += walkCycles
	h.Stats.WalkCycles.Add(walkCycles)
	if err != nil {
		h.Stats.Faults.Inc()
		return 0, cycles, false
	}
	// Refill caches.
	h.L2.Insert(vpn, ppn)
	h.L1.Insert(vpn, ppn)
	for skip := 1; skip <= Levels-1; skip++ {
		prefix := vpn >> uint(9*(Levels-1-skip)) << 8
		if len(h.walkCache) >= h.wcCap {
			for k := range h.walkCache { // random-ish eviction
				delete(h.walkCache, k)
				break
			}
		}
		h.walkCache[prefix|uint64(skip)] = skip
	}
	return ppn<<PageShift | off, cycles, true
}

// Invalidate performs a shootdown of one page in both TLB levels.
func (h *Hierarchy) Invalidate(vpn uint64) {
	h.L1.Invalidate(vpn)
	h.L2.Invalidate(vpn)
}

// InvalidateRange shoots down the byte range [base, base+length) in both
// TLB levels and drops the paging-structure cache (its cached prefixes
// may point at remapped structures). This is the hardware analogue of the
// guard/translation cache's precise invalidation: map changes that do not
// alter the region set flush only the affected pages.
func (h *Hierarchy) InvalidateRange(base, length uint64) {
	if length == 0 {
		return
	}
	vpnLo := base >> PageShift
	vpnHi := (base + length - 1 + PageSize) >> PageShift
	h.L1.InvalidateRange(vpnLo, vpnHi)
	h.L2.InvalidateRange(vpnLo, vpnHi)
	h.walkCache = make(map[uint64]int)
}

// DTLBMPKI returns level-1 DTLB misses per 1000 instructions (Figure 2's
// metric) given the retired instruction count.
func (h *Hierarchy) DTLBMPKI(insns uint64) float64 {
	if insns == 0 {
		return 0
	}
	return float64(h.Stats.L1Misses.Get()) * 1000 / float64(insns)
}

// WalksPerKI returns completed pagewalks per 1000 instructions.
func (h *Hierarchy) WalksPerKI(insns uint64) float64 {
	if insns == 0 {
		return 0
	}
	return float64(h.Stats.Walks.Get()) * 1000 / float64(insns)
}

// AvgWalkCycles returns the mean pagewalk latency.
func (h *Hierarchy) AvgWalkCycles() float64 {
	if h.Stats.Walks.Get() == 0 {
		return 0
	}
	return float64(h.Stats.WalkCycles.Get()) / float64(h.Stats.Walks.Get())
}
