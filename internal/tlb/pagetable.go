package tlb

import "fmt"

// PageTable is an x64-style four-level radix page table (PML4 → PDPT → PD
// → PT), 9 bits per level. It maps virtual page numbers to physical page
// numbers. The pagewalker traverses it on TLB misses, and the levels it
// touches drive the walk-cycle model.
type PageTable struct {
	root *ptNode
	// Mapped counts valid leaf entries.
	Mapped uint64
}

type ptNode struct {
	children [512]*ptNode
	// leaf level: valid + ppn per slot
	ppns  [512]uint64
	valid [512]bool
	leaf  bool
}

// Levels is the radix tree depth.
const Levels = 4

func levelIndex(vpn uint64, level int) int {
	// level 0 is the root (PML4); 9 bits per level, leaf uses the low 9.
	shift := uint(9 * (Levels - 1 - level))
	return int((vpn >> shift) & 0x1FF)
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{root: &ptNode{}}
}

// Map installs the translation vpn → ppn, creating intermediate nodes.
func (pt *PageTable) Map(vpn, ppn uint64) {
	n := pt.root
	for level := 0; level < Levels-1; level++ {
		idx := levelIndex(vpn, level)
		if n.children[idx] == nil {
			n.children[idx] = &ptNode{leaf: level == Levels-2}
		}
		n = n.children[idx]
	}
	idx := levelIndex(vpn, Levels-1)
	if !n.valid[idx] {
		pt.Mapped++
	}
	n.ppns[idx] = ppn
	n.valid[idx] = true
}

// Unmap removes the translation for vpn, reporting whether it existed.
func (pt *PageTable) Unmap(vpn uint64) bool {
	n := pt.root
	for level := 0; level < Levels-1; level++ {
		n = n.children[levelIndex(vpn, level)]
		if n == nil {
			return false
		}
	}
	idx := levelIndex(vpn, Levels-1)
	if !n.valid[idx] {
		return false
	}
	n.valid[idx] = false
	pt.Mapped--
	return true
}

// Walk resolves vpn, returning the ppn and the number of node accesses the
// walk performed (always Levels for a successful x64 walk; fewer when an
// upper level is missing).
func (pt *PageTable) Walk(vpn uint64) (ppn uint64, accesses int, err error) {
	n := pt.root
	for level := 0; level < Levels-1; level++ {
		accesses++
		n = n.children[levelIndex(vpn, level)]
		if n == nil {
			return 0, accesses, fmt.Errorf("tlb: page fault at vpn %#x (level %d)", vpn, level)
		}
	}
	accesses++
	idx := levelIndex(vpn, Levels-1)
	if !n.valid[idx] {
		return 0, accesses, fmt.Errorf("tlb: page fault at vpn %#x (leaf)", vpn)
	}
	return n.ppns[idx], accesses, nil
}

// IdentityMap installs vpn→vpn mappings for npages pages starting at the
// page containing base. The VM uses this to model a kernel running the
// benchmark with all of its memory mapped (the steady state Table 2
// observes).
func (pt *PageTable) IdentityMap(base uint64, npages uint64) {
	vpn := base >> PageShift
	for i := uint64(0); i < npages; i++ {
		pt.Map(vpn+i, vpn+i)
	}
}
