// Package tlb implements the traditional address-translation model that
// CARAT is compared against (paper §2.1, Figure 2): set-associative L1 DTLB
// and L2 STLB models with LRU replacement, a four-level radix page table,
// and a pagewalker with a paging-structure (walk) cache. The VM drives it
// in "traditional" mode to account translation costs and DTLB miss rates.
package tlb

// PageShift is log2 of the page size (4 KB pages).
const PageShift = 12

// PageSize is the translation granularity.
const PageSize = 1 << PageShift

// TLB is one set-associative translation lookaside buffer with LRU
// replacement.
type TLB struct {
	sets  [][]entry
	ways  int
	clock uint64

	Hits   uint64
	Misses uint64
}

type entry struct {
	vpn   uint64
	ppn   uint64
	valid bool
	lru   uint64
}

// NewTLB builds a TLB with the given total entry count and associativity.
// entries must be a multiple of ways.
func NewTLB(entries, ways int) *TLB {
	if entries%ways != 0 {
		panic("tlb: entries not a multiple of ways")
	}
	nsets := entries / ways
	t := &TLB{sets: make([][]entry, nsets), ways: ways}
	for i := range t.sets {
		t.sets[i] = make([]entry, ways)
	}
	return t
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return len(t.sets) * t.ways }

func (t *TLB) set(vpn uint64) []entry { return t.sets[vpn%uint64(len(t.sets))] }

// Lookup translates vpn, returning (ppn, true) on a hit.
func (t *TLB) Lookup(vpn uint64) (uint64, bool) {
	t.clock++
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lru = t.clock
			t.Hits++
			return set[i].ppn, true
		}
	}
	t.Misses++
	return 0, false
}

// Insert fills the translation vpn→ppn, evicting the LRU way.
func (t *TLB) Insert(vpn, ppn uint64) {
	t.clock++
	set := t.set(vpn)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, ppn: ppn, valid: true, lru: t.clock}
}

// Invalidate drops the translation for vpn if present (a TLB shootdown).
func (t *TLB) Invalidate(vpn uint64) {
	for i := range t.set(vpn) {
		set := t.set(vpn)
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
		}
	}
}

// InvalidateRange shoots down every entry whose vpn falls in
// [vpnLo, vpnHi). When the range covers more pages than the TLB holds
// entries, a full flush is cheaper than per-page probes — the same
// heuristic real kernels use to pick flush-all over INVLPG loops.
func (t *TLB) InvalidateRange(vpnLo, vpnHi uint64) {
	if vpnHi-vpnLo >= uint64(t.Entries()) {
		t.InvalidateAll()
		return
	}
	for vpn := vpnLo; vpn < vpnHi; vpn++ {
		t.Invalidate(vpn)
	}
}

// InvalidateAll flushes the TLB (a full shootdown / CR3 write).
func (t *TLB) InvalidateAll() {
	for _, set := range t.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// MPKI returns misses per thousand lookups scaled by the given instruction
// count (misses per 1000 instructions when insns is the retired count).
func (t *TLB) MPKI(insns uint64) float64 {
	if insns == 0 {
		return 0
	}
	return float64(t.Misses) * 1000 / float64(insns)
}
