package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTLBHitMiss(t *testing.T) {
	tb := NewTLB(64, 4)
	if _, hit := tb.Lookup(5); hit {
		t.Fatal("empty TLB hit")
	}
	tb.Insert(5, 99)
	ppn, hit := tb.Lookup(5)
	if !hit || ppn != 99 {
		t.Fatalf("lookup = (%d,%v)", ppn, hit)
	}
	if tb.Hits != 1 || tb.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", tb.Hits, tb.Misses)
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	tb := NewTLB(8, 4) // 2 sets, 4 ways
	// These vpns all map to set 0 (even numbers).
	vpns := []uint64{0, 2, 4, 6}
	for _, v := range vpns {
		tb.Insert(v, v+100)
	}
	// Touch 0 so it is MRU; insert 8 (same set) → evicts LRU = 2.
	tb.Lookup(0)
	tb.Insert(8, 108)
	if _, hit := tb.Lookup(0); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := tb.Lookup(2); hit {
		t.Error("LRU entry not evicted")
	}
	if _, hit := tb.Lookup(8); !hit {
		t.Error("new entry missing")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tb := NewTLB(64, 4)
	tb.Insert(7, 70)
	tb.Invalidate(7)
	if _, hit := tb.Lookup(7); hit {
		t.Error("invalidated entry still hits")
	}
	tb.Insert(9, 90)
	tb.InvalidateAll()
	if _, hit := tb.Lookup(9); hit {
		t.Error("InvalidateAll left an entry")
	}
}

func TestPageTableMapWalk(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x12345, 0x777)
	ppn, accesses, err := pt.Walk(0x12345)
	if err != nil || ppn != 0x777 {
		t.Fatalf("walk = (%#x, %v)", ppn, err)
	}
	if accesses != Levels {
		t.Errorf("walk accesses = %d, want %d", accesses, Levels)
	}
	if _, _, err := pt.Walk(0x99999); err == nil {
		t.Error("walk of unmapped vpn succeeded")
	}
	if pt.Mapped != 1 {
		t.Errorf("mapped = %d", pt.Mapped)
	}
}

func TestPageTableUnmap(t *testing.T) {
	pt := NewPageTable()
	pt.Map(42, 43)
	if !pt.Unmap(42) {
		t.Fatal("unmap failed")
	}
	if pt.Unmap(42) {
		t.Fatal("double unmap succeeded")
	}
	if _, _, err := pt.Walk(42); err == nil {
		t.Error("walk after unmap succeeded")
	}
}

func TestQuickPageTableMatchesMap(t *testing.T) {
	f := func(pairs []uint32) bool {
		pt := NewPageTable()
		ref := map[uint64]uint64{}
		for i, p := range pairs {
			vpn := uint64(p) & 0xFFFFF
			ppn := uint64(i) + 1
			pt.Map(vpn, ppn)
			ref[vpn] = ppn
		}
		if pt.Mapped != uint64(len(ref)) {
			return false
		}
		for vpn, want := range ref {
			got, _, err := pt.Walk(vpn)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyRefill(t *testing.T) {
	pt := NewPageTable()
	pt.IdentityMap(0, 1024)
	h := NewHierarchy(pt)

	// First access: L1 miss, L2 miss, walk.
	pa, cyc, ok := h.Translate(5 * PageSize)
	if !ok || pa != 5*PageSize {
		t.Fatalf("translate = (%#x, %v)", pa, ok)
	}
	if cyc == 0 {
		t.Error("cold miss should cost cycles")
	}
	// Second access: L1 hit, free.
	_, cyc2, _ := h.Translate(5*PageSize + 64)
	if cyc2 != 0 {
		t.Errorf("warm hit cost %d cycles", cyc2)
	}
	if h.Stats.Walks.Get() != 1 {
		t.Errorf("walks = %d, want 1", h.Stats.Walks.Get())
	}
}

func TestHierarchyFault(t *testing.T) {
	h := NewHierarchy(NewPageTable())
	if _, _, ok := h.Translate(0x5000); ok {
		t.Error("translation of unmapped address succeeded")
	}
	if h.Stats.Faults.Get() != 1 {
		t.Errorf("faults = %d", h.Stats.Faults.Get())
	}
}

func TestHierarchyLocalityBeatsRandom(t *testing.T) {
	// Figure 2's driving effect: random accesses over a large footprint
	// incur vastly more L1 DTLB misses than sequential ones.
	mkHier := func() *Hierarchy {
		pt := NewPageTable()
		pt.IdentityMap(0, 1<<16) // 256 MB mapped
		return NewHierarchy(pt)
	}
	const accesses = 200000
	seq := mkHier()
	for i := 0; i < accesses; i++ {
		seq.Translate(uint64(i) * 8)
	}
	rnd := mkHier()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < accesses; i++ {
		rnd.Translate(uint64(rng.Intn(1<<16)) * PageSize)
	}
	seqMPKI := seq.DTLBMPKI(accesses)
	rndMPKI := rnd.DTLBMPKI(accesses)
	if seqMPKI*20 > rndMPKI {
		t.Errorf("sequential MPKI %.2f not far below random %.2f", seqMPKI, rndMPKI)
	}
}

func TestWalkCacheReducesCost(t *testing.T) {
	pt := NewPageTable()
	pt.IdentityMap(0, 1<<14)
	h := NewHierarchy(pt)
	// Touch many pages within the same PD region: walk cache should make
	// later walks cheaper than 4 levels.
	for i := uint64(0); i < 1<<14; i++ {
		h.Translate(i * PageSize)
	}
	if h.AvgWalkCycles() >= Levels*cycPerWalkLevel {
		t.Errorf("avg walk %.1f cycles: walk cache ineffective", h.AvgWalkCycles())
	}
	if h.AvgWalkCycles() < cycPerWalkLevel {
		t.Errorf("avg walk %.1f cycles: below single-level floor", h.AvgWalkCycles())
	}
}

func TestMPKIMath(t *testing.T) {
	tb := NewTLB(64, 4)
	tb.Lookup(1) // miss
	tb.Insert(1, 1)
	tb.Lookup(1) // hit
	if got := tb.MPKI(1000); got != 1 {
		t.Errorf("MPKI = %f, want 1", got)
	}
	if got := tb.MPKI(0); got != 0 {
		t.Errorf("MPKI(0) = %f", got)
	}
}

func TestTLBInvalidateRange(t *testing.T) {
	tb := NewTLB(64, 4)
	for vpn := uint64(10); vpn < 20; vpn++ {
		tb.Insert(vpn, vpn+100)
	}
	tb.InvalidateRange(12, 15)
	for vpn := uint64(10); vpn < 20; vpn++ {
		_, hit := tb.Lookup(vpn)
		wantHit := vpn < 12 || vpn >= 15
		if hit != wantHit {
			t.Errorf("vpn %d: hit=%v, want %v", vpn, hit, wantHit)
		}
	}
	// A range wider than the TLB's capacity degenerates to a full flush:
	// unrelated entries go too.
	tb.Insert(500, 600)
	tb.InvalidateRange(0, 1000)
	if _, hit := tb.Lookup(500); hit {
		t.Error("full-flush range left an entry live")
	}
}

func TestHierarchyInvalidateRange(t *testing.T) {
	pt := NewPageTable()
	pt.IdentityMap(0, 64)
	h := NewHierarchy(pt)
	// Warm pages 3..6, then shoot down bytes covering pages 4-5 only.
	for vpn := uint64(3); vpn <= 6; vpn++ {
		if _, _, ok := h.Translate(vpn << PageShift); !ok {
			t.Fatalf("translate vpn %d failed", vpn)
		}
	}
	h.InvalidateRange(4<<PageShift, 2*PageSize)
	h.L1.Hits, h.L1.Misses = 0, 0
	for vpn := uint64(3); vpn <= 6; vpn++ {
		h.Translate(vpn << PageShift)
	}
	// Pages 3 and 6 still hit L1; 4 and 5 miss.
	if h.L1.Hits != 2 || h.L1.Misses != 2 {
		t.Errorf("after range shootdown: L1 hits=%d misses=%d, want 2/2", h.L1.Hits, h.L1.Misses)
	}
}
