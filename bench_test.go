// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates its
// experiment through internal/bench and reports the experiment's headline
// statistic as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full system end to end and prints the reproduced
// numbers. Run cmd/caratbench for the full row-by-row tables.
package carat_test

import (
	"io"
	"testing"

	"carat/internal/bench"
	"carat/internal/guard"
	"carat/internal/workload"
)

// benchOpts uses a representative subset at test scale so the full suite
// stays fast; pass -benchtime=1x and use cmd/caratbench -scale small for
// paper-scale numbers.
func benchOpts(names ...string) bench.Options {
	o := bench.DefaultOptions(workload.ScaleTest)
	o.Only = names
	return o
}

var corpus = []string{"EP", "LU", "canneal", "mcf_s", "swaptions", "nab_s"}

func BenchmarkFig2DTLBMisses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig2(benchOpts(corpus...))
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range r.Rows {
			if row.DTLBMPKI > worst {
				worst = row.DTLBMPKI
			}
		}
		b.ReportMetric(worst, "worst-MPKI")
	}
}

func BenchmarkTable1GuardOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1(benchOpts(corpus...))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean.OptGuards, "mean-frac-remaining")
		b.ReportMetric(r.Mean.Opt3, "mean-frac-opt3")
	}
}

func BenchmarkFig3GuardOverheadGeneral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig3(benchOpts(corpus...), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMPX, "geomean-mpx")
		b.ReportMetric(r.GeoRange, "geomean-range")
	}
}

func BenchmarkFig3GuardOverheadCARAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig3(benchOpts(corpus...), true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMPX, "geomean-mpx")
		b.ReportMetric(r.GeoRange, "geomean-range")
	}
}

func BenchmarkFig4MultiRegionGuards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig4(bench.DefaultOptions(workload.ScaleTest))
		if err != nil {
			b.Fatal(err)
		}
		// Headline: random if-tree cost at the largest region count.
		for _, p := range r.Points {
			if p.Mechanism == "iftree" && p.Pattern == "random" && p.Regions == 16384 {
				b.ReportMetric(p.AvgCycles, "iftree-random-16k-cyc")
			}
		}
	}
}

func BenchmarkTable2PagingRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table2(benchOpts(corpus...))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoAllocRate, "geo-alloc-per-s")
		b.ReportMetric(r.GeoMoveRate, "geo-move-per-s")
	}
}

func BenchmarkFig5EscapeHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig5(benchOpts(corpus...))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FracLE10*100, "pct-allocs-le10-escapes")
		b.ReportMetric(float64(r.TotalOver50), "allocs-over-50-escapes")
	}
}

func BenchmarkFig6TrackingMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6(benchOpts(corpus...))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean, "geomean-mem-ratio")
	}
}

func BenchmarkFig7TrackingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig7(benchOpts(corpus...))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean, "geomean-time-ratio")
	}
}

func BenchmarkFig9PageMoves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig9(benchOpts("canneal", "nab_s"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomeans[0], "geomean-1-per-s")
		b.ReportMetric(r.Geomeans[len(r.Geomeans)-1], "geomean-20k-per-s")
	}
}

func BenchmarkTable3MoveBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table3(benchOpts("canneal", "mcf_s", "nab_s"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMean.TotalCost, "geomean-total-cyc")
		b.ReportMetric(r.GeoMean.FracNoExpand, "geomean-frac-no-expand")
	}
}

// Ablation-style microbenchmarks: raw guard mechanism throughput, which
// grounds the Figure 3/4 cost model.
func BenchmarkGuardMechanisms(b *testing.B) {
	set := guard.NewRegionSet()
	for i := 0; i < 64; i++ {
		if err := set.Add(guard.Region{Base: 0x10000 + uint64(i)*0x2000, Len: 0x1000, Perm: guard.PermRW}); err != nil {
			b.Fatal(err)
		}
	}
	for _, mech := range []guard.Mechanism{guard.MechRange, guard.MechMPX, guard.MechIfTree, guard.MechBinarySearch} {
		b.Run(mech.String(), func(b *testing.B) {
			ev := guard.NewEvaluator(mech, set)
			addr := uint64(0x10000)
			for i := 0; i < b.N; i++ {
				ev.Check(addr, 8, guard.PermRead)
				addr += 64
				if addr >= 0x10000+0x1000 {
					addr = 0x10000
				}
			}
			b.ReportMetric(ev.AvgCycles(), "modeled-cyc/check")
		})
	}
}

// BenchmarkFullExperimentSuite runs every experiment once at test scale —
// the "does everything still regenerate" smoke benchmark.
func BenchmarkFullExperimentSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("full suite is slow")
	}
	for i := 0; i < b.N; i++ {
		o := bench.DefaultOptions(workload.ScaleTest)
		o.Only = corpus
		if err := bench.RunByID("all", o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
