// Quickstart: compile a small program with the full CARAT pipeline, let
// the (simulated) kernel verify its signature, and run it under physical
// addressing with guards and tracking live.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"carat/internal/core"
	"carat/internal/ir"
	"carat/internal/passes"
	"carat/internal/vm"
)

// A tiny C-like program in CARAT's textual IR: allocate a buffer on the
// heap, fill it, sum it, print the sum.
const program = `module "quickstart"
func @malloc(%sz: i64) -> ptr
func @free(%p: ptr) -> void
func @print_i64(%x: i64) -> void

func @main() -> i64 {
entry:
  %buf = call ptr @malloc(i64 800)
  br ^fill
fill:
  %i = phi i64 [0, ^entry], [%i1, ^fill]
  %p = gep i64, %buf, %i
  store i64 %i, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 100
  condbr %c, ^fill, ^sum
sum:
  br ^loop
loop:
  %j = phi i64 [0, ^sum], [%j1, ^loop]
  %acc = phi i64 [0, ^sum], [%acc1, ^loop]
  %q = gep i64, %buf, %j
  %v = load i64, %q
  %acc1 = add i64 %acc, %v
  %j1 = add i64 %j, 1
  %d = icmp slt i64 %j1, 100
  condbr %d, ^loop, ^done
done:
  call void @print_i64(i64 %acc1)
  call void @free(ptr %buf)
  ret i64 0
}`

func main() {
	m, err := ir.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// Compile with the full pipeline: guard injection + the three CARAT
	// optimizations + allocation/escape tracking, then sign.
	compiler, err := core.NewCompiler(passes.LevelTracking)
	if err != nil {
		log.Fatal(err)
	}
	res, err := compiler.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("compiled: %d guards injected, %d hoisted, %d merged, %d removed, %d remain\n",
		s.GuardsInjected, s.Hoisted, s.Merged, s.Removed, s.GuardsRemaining)

	// The "kernel" verifies the signature before loading (§2.2).
	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	sys := core.NewSystem(compiler, cfg)
	v, ret, err := sys.Run(res)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program output: %v (expected sum 0..99 = 4950)\n", v.Output)
	fmt.Printf("exit code: %d\n", ret)
	fmt.Printf("executed %d instructions in %d modeled cycles; %d guard checks\n",
		v.Instrs, v.Cycles, v.GuardChecks)
	rt := v.Runtime().Stats
	fmt.Printf("runtime tracked %d allocations, %d frees, %d escapes\n",
		rt.Allocs, rt.Frees, rt.EscapeEvents)
}
