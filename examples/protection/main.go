// Protection demonstrates CARAT's guard-based protection (§2.3): guards
// admit legal accesses with low overhead, a kernel protection change is
// observed by the very next guard, and a forged out-of-region pointer is
// stopped before it touches physical memory.
//
//	go run ./examples/protection
package main

import (
	"errors"
	"fmt"
	"log"

	"carat/internal/core"
	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/passes"
	"carat/internal/vm"
)

const legal = `module "legal"
global @data : [512 x i64]
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %p = gep i64, @data, %i
  store i64 %i, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 512
  condbr %c, ^loop, ^done
done:
  %q = gep i64, @data, 511
  %v = load i64, %q
  ret i64 %v
}`

const forged = `module "forged"
func @main() -> i64 {
entry:
  %p = inttoptr i64 81985529216486895 to ptr
  %v = load i64, %p
  ret i64 %v
}`

func run(src string, lvl passes.Level, pre func(*vm.VM) error) (*vm.VM, int64, error) {
	m, err := ir.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	compiler, err := core.NewCompiler(lvl)
	if err != nil {
		log.Fatal(err)
	}
	res, err := compiler.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	v, err := core.NewSystem(compiler, cfg).Load(res)
	if err != nil {
		log.Fatal(err)
	}
	if pre != nil {
		if err := pre(v); err != nil {
			log.Fatal(err)
		}
	}
	ret, err := v.Run()
	return v, ret, err
}

func main() {
	// 1. A legal program runs under full guarding.
	v, ret, err := run(legal, passes.LevelGuardsOpt, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legal program: exit %d after %d guard checks, 0 faults\n", ret, v.GuardChecks)

	// 2. A forged physical pointer is rejected by the first guard.
	_, _, err = run(forged, passes.LevelGuardsOpt, nil)
	var fault *vm.Fault
	if errors.As(err, &fault) {
		fmt.Printf("forged pointer: guard trapped access to %#x (%s)\n", fault.Addr, fault.Msg)
	} else {
		log.Fatalf("forged pointer was not trapped: %v", err)
	}

	// 3. A kernel protection change: the globals region becomes read-only
	//    mid-flight, so the program's first store faults with a write
	//    permission violation — the CARAT analogue of mprotect + SIGSEGV.
	_, _, err = run(legal, passes.LevelGuardsOpt, func(v *vm.VM) error {
		g := v.GlobalAddr(findGlobal(v))
		page := g &^ (kernel.PageSize - 1)
		return v.Process().RequestProtect(page, kernel.PageSize, guard.PermRead)
	})
	if errors.As(err, &fault) && fault.Perm == guard.PermWrite {
		fmt.Printf("protection change: next store faulted as expected (%s at %#x)\n",
			fault.Msg, fault.Addr)
	} else {
		log.Fatalf("protection change not enforced: %v", err)
	}
	fmt.Println("all three protection scenarios behaved as the paper describes")
}

// findGlobal digs the @data global out of the loaded module.
func findGlobal(v *vm.VM) *ir.Global {
	// The VM exposes global addresses; examples keep a handle by parsing
	// the module again would be wasteful, so walk the one we loaded.
	for _, g := range loadedGlobals(v) {
		if g.Name == "data" {
			return g
		}
	}
	log.Fatal("global @data not found")
	return nil
}

func loadedGlobals(v *vm.VM) []*ir.Global { return v.Module().Globals }
