// Defrag demonstrates the memory-management policy daemon (§7): churn
// workloads shred a small physical memory into single-page holes, and the
// defragmentation policy drives the Figure 8 move protocol — through each
// process's CARAT runtime — until a superpage-sized contiguous free run
// exists again. No page tables are involved: the kernel relocates live
// allocations and the runtimes patch every escaped pointer.
//
//	go run ./examples/defrag
package main

import (
	"fmt"
	"log"

	"carat/internal/mmpolicy"
)

func main() {
	// Three churn processes share a 512-page physical memory. Each keeps a
	// slot array of pointers into its heap (tracked escapes), allocating
	// and freeing 1-4 page blocks at random.
	h, err := mmpolicy.NewHarness(mmpolicy.HarnessConfig{
		MemBytes: 1 << 21,
		Procs: []mmpolicy.ProcSpec{
			{Name: "churn-a", Kind: mmpolicy.Churn, Slots: 48, MaxPages: 4, Seed: 11},
			{Name: "churn-b", Kind: mmpolicy.Churn, Slots: 48, MaxPages: 4, Seed: 12},
			{Name: "churn-c", Kind: mmpolicy.Churn, Slots: 48, MaxPages: 4, Seed: 13},
		},
		Policies: []mmpolicy.Policy{mmpolicy.NewDefrag(64)},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: fragment. The daemon sleeps while the workloads churn.
	if err := h.Run(500); err != nil {
		log.Fatal(err)
	}
	before := h.K.Alloc.FragStats()
	fmt.Printf("after churn: %d/%d pages free in %d runs, largest run %d pages (frag score %.2f)\n",
		before.FreePages, before.TotalPages, before.FreeRuns, before.LargestRun, before.Score)

	// Phase 2: compact. Each tick the policy picks the cheapest 64-page
	// window, isolates it from allocation, and moves its occupants out.
	h.D.CaptureFragBefore()
	ticks := 0
	for ticks < 50 {
		consumed, err := h.D.Tick(h.Cycles)
		h.Cycles += consumed
		if err != nil {
			log.Fatal(err)
		}
		ticks++
		if h.K.Alloc.FragStats().LargestRun >= 64 {
			break
		}
	}
	after := h.K.Alloc.FragStats()
	fmt.Printf("after %d daemon ticks: largest run %d pages (frag score %.2f)\n",
		ticks, after.LargestRun, after.Score)

	// Every decision carries its modeled cost in the same cycle units as
	// the paper's Table 3 breakdown.
	doc := h.D.Report()
	fmt.Printf("\ndecision log (%d moves, %d vetoes, %d daemon cycles):\n",
		doc.Totals.Moves, doc.Totals.Vetoes, doc.Totals.DaemonCycles)
	for i, dec := range doc.Decisions {
		if i >= 8 {
			fmt.Printf("  ... %d more\n", len(doc.Decisions)-i)
			break
		}
		fmt.Printf("  tick %d: %s %s %s base=%#x pages=%d cost=%d cycles (%s)\n",
			dec.Tick, dec.Policy, dec.Action, dec.Proc, dec.Base, dec.Pages, dec.Cycles, dec.Reason)
	}

	// The proof: every process still finds every one of its stamped
	// allocations through its (possibly patched) pointers.
	if err := h.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintegrity verified: every pointer still reaches its data")
}
