// Memorymove demonstrates the headline CARAT capability: the kernel moves
// physical pages out from under a running program, and the runtime patches
// every escaped pointer (in memory and in registers) so the program never
// notices — Figure 8's twelve-step protocol, live.
//
//	go run ./examples/memorymove
package main

import (
	"fmt"
	"log"

	"carat/internal/core"
	"carat/internal/ir"
	"carat/internal/passes"
	"carat/internal/vm"
)

// The program builds a linked list on the heap and repeatedly walks it,
// printing a checksum each lap. Every pointer in the list is an "escape"
// the runtime tracks; moving any page of the list forces patching.
const program = `module "memorymove"
func @malloc(%sz: i64) -> ptr
func @print_i64(%x: i64) -> void

func @main() -> i64 {
entry:
  %head = call ptr @malloc(i64 16)
  store i64 1, %head
  br ^build
build:
  %i = phi i64 [1, ^entry], [%i1, ^build]
  %prev = phi ptr [%head, ^entry], [%node, ^build]
  %node = call ptr @malloc(i64 16)
  %val = add i64 %i, 1
  store i64 %val, %node
  %nextslot = gep i64, %prev, 1
  store ptr %node, %nextslot
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 200
  condbr %c, ^build, ^laps
laps:
  %lastslot = gep i64, %node, 1
  %null = inttoptr i64 0 to ptr
  store ptr %null, %lastslot
  br ^lap
lap:
  %l = phi i64 [0, ^laps], [%l1, ^lapend]
  br ^walk
walk:
  %cur = phi ptr [%head, ^lap], [%nxt, ^walkbody]
  %sum = phi i64 [0, ^lap], [%sum1, ^walkbody]
  %isnull = icmp eq ptr %cur, null
  condbr %isnull, ^lapend, ^walkbody
walkbody:
  %v = load i64, %cur
  %sum1 = add i64 %sum, %v
  %ns = gep i64, %cur, 1
  %nxt = load ptr, %ns
  br ^walk
lapend:
  call void @print_i64(i64 %sum)
  %l1 = add i64 %l, 1
  %lc = icmp slt i64 %l1, 20
  condbr %lc, ^lap, ^done
done:
  ret i64 0
}`

func main() {
	m, err := ir.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	compiler, err := core.NewCompiler(passes.LevelTracking)
	if err != nil {
		log.Fatal(err)
	}
	res, err := compiler.Compile(m)
	if err != nil {
		log.Fatal(err)
	}

	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	sys := core.NewSystem(compiler, cfg)
	v, err := sys.Load(res)
	if err != nil {
		log.Fatal(err)
	}

	// Kernel policy: every 20k instructions, move the page holding the
	// most-escaped allocation (the paper's worst-case choice).
	moves := 0
	v.SetMovePolicy(20_000, func() error {
		moves++
		return v.InjectWorstCaseMove()
	})

	if _, err := v.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("list checksum per lap: %v\n", v.Output)
	ok := true
	for _, s := range v.Output {
		if s != v.Output[0] {
			ok = false
		}
	}
	fmt.Printf("all %d laps produced identical checksums: %v\n", len(v.Output), ok)
	fmt.Printf("kernel performed %d page-move change requests (%d pages)\n",
		moves, v.Kernel().Stats.PageMoves.Get())
	for i, bd := range v.Runtime().MoveStats {
		if i >= 3 {
			fmt.Printf("  ... and %d more moves\n", len(v.Runtime().MoveStats)-3)
			break
		}
		fmt.Printf("  move %d: %d allocs, %d escapes patched, %d regs patched, %d cycles total\n",
			i+1, bd.AllocsMoved, bd.EscapesPatched, bd.RegsPatched, bd.TotalCycles())
	}
}
