// Sourcelang compiles a CARAT-C program (the C-subset frontend of
// internal/cc) through the full CARAT pipeline and runs it under physical
// addressing while the kernel moves its memory — source language to
// patched pointers, end to end.
//
//	go run ./examples/sourcelang
package main

import (
	"fmt"
	"log"

	"carat/internal/cc"
	"carat/internal/core"
	"carat/internal/passes"
	"carat/internal/vm"
)

// A histogram builder: heap buffer, random probes, global table — the
// kind of code the paper's restrictions (§2.2) admit unchanged.
const program = `
// CARAT-C: ints are i64, floats are f64, arrays decay to pointers.
global histogram: [16]int;
global seed: int;

func rand(): int {
    seed = seed ^ (seed << 13);
    seed = seed ^ (seed >> 7);
    seed = seed ^ (seed << 17);
    return seed;
}

func fill(buf: ptr, n: int) {
    for (var i = 0; i < n; i = i + 1) {
        buf[i] = rand() & 1023;
    }
}

func tally(buf: ptr, n: int) {
    for (var i = 0; i < n; i = i + 1) {
        var bucket = buf[i] & 15;
        histogram[bucket] = histogram[bucket] + 1;
    }
}

func main(): int {
    seed = 88172645463325252;
    var buf = malloc(8 * 4096);
    fill(buf, 4096);
    tally(buf, 4096);
    var total = 0;
    for (var b = 0; b < 16; b = b + 1) {
        print_int(histogram[b]);
        total = total + histogram[b];
    }
    free(buf);
    return total;
}`

func main() {
	m, err := cc.Compile("histogram", program)
	if err != nil {
		log.Fatal(err)
	}
	compiler, err := core.NewCompiler(passes.LevelTracking)
	if err != nil {
		log.Fatal(err)
	}
	res, err := compiler.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("CARAT-C -> IR -> guards: %d injected, %d hoisted, %d merged, %d removed\n",
		s.GuardsInjected, s.Hoisted, s.Merged, s.Removed)

	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	v, err := core.NewSystem(compiler, cfg).Load(res)
	if err != nil {
		log.Fatal(err)
	}
	// Kernel policy: keep relocating the most-escaped allocation.
	v.SetMovePolicy(15_000, func() error { return v.InjectWorstCaseMove() })
	ret, err := v.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bucket counts: %v\n", v.Output)
	fmt.Printf("total tallied: %d (want 4096) — exit %d\n", v.Output[0]+sum(v.Output[1:]), ret)
	fmt.Printf("%d instructions, %d guard checks, %d page moves under the program\n",
		v.Instrs, v.GuardChecks, v.Kernel().Stats.PageMoves.Get())
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
