# Tier-1 verification (see ROADMAP.md): `make check` is the gate every
# change must keep green. `make smoke` additionally exercises the
# machine-readable output end to end.

GO ?= go
# WORKERS sets the caratbench worker-pool width for smoke (0 = GOMAXPROCS).
WORKERS ?= 0

.PHONY: all fmt vet build test race smoke bench check

all: check

# fmt fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector: the obs registry, the
# runtime's batched escape path, and the mmpolicy daemon are all
# concurrently-accessed shared state.
race:
	$(GO) test -race ./...

# smoke runs the full experiment suite at test scale with -json and
# validates that the output parses and carries a supported schema version.
smoke: build
	$(GO) run ./cmd/caratbench -exp all -scale test -json -workers $(WORKERS) | $(GO) run ./scripts/validatejson

# bench measures the execution engine (baseline dispatch vs predecode vs
# predecode+xcache), writes BENCH_exec.json, validates its schema, and
# fails if the full engine is below 2x over baseline dispatch or has
# regressed >20% against the committed reference speedups.
bench: build
	$(GO) test -run '^$$' -bench BenchmarkExec -benchtime 2x ./internal/bench/
	$(GO) run ./scripts/benchexec -out BENCH_exec.json -baseline BENCH_exec.baseline.json
	$(GO) run ./scripts/validatejson BENCH_exec.json

check: fmt vet build test race
