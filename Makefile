# Tier-1 verification (see ROADMAP.md): `make check` is the gate every
# change must keep green. `make smoke` additionally exercises the
# machine-readable output end to end.

GO ?= go
# WORKERS sets the caratbench worker-pool width for smoke (0 = GOMAXPROCS).
WORKERS ?= 0
# SOAK_SEEDS / SOAK_START parameterize the chaos soak (CI rotates START).
SOAK_SEEDS ?= 8
SOAK_START ?= 1
# FUZZTIME is the per-target budget for the native fuzz targets.
FUZZTIME ?= 20s
# COVER_FLOOR is the minimum total statement coverage (percent) `make
# cover` accepts. Raise it when coverage grows; never lower it.
COVER_FLOOR ?= 75

.PHONY: all fmt vet build test race smoke bench scale check lint cover soak fuzz serve loadtest workflowsync

all: check

# fmt fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector: the obs registry, the
# runtime's batched escape path, and the mmpolicy daemon are all
# concurrently-accessed shared state.
race:
	$(GO) test -race ./...

# smoke runs the full experiment suite at test scale with -json and
# validates that the output parses and carries a supported schema version.
# The bench output goes through an intermediate file so a caratbench
# failure fails the target — a pipeline would report only validatejson's
# status and mask a crashed bench. The second leg starts caratbench with a
# live -http telemetry server, curls /metrics and /profile, and validates
# both (see scripts/smoke_telemetry.sh). The third leg boots caratd, posts
# a module, runs it, scrapes /metrics, drives a small load pass, and
# drains it (see scripts/smoke_server.sh).
smoke: build
	$(GO) run ./cmd/caratbench -exp all -scale test -json -workers $(WORKERS) > smoke.json
	$(GO) run ./scripts/validatejson smoke.json
	@rm -f smoke.json
	sh ./scripts/smoke_telemetry.sh
	sh ./scripts/smoke_server.sh

# bench measures the execution engine (baseline dispatch vs predecode vs
# predecode+xcache vs full+telemetry), writes BENCH_exec.json, validates
# its schema, and fails if the full engine is below 2x over baseline
# dispatch, has regressed >20% against the committed reference speedups,
# or loses >5% throughput with the cycle sampler and a live -http
# telemetry server attached.
bench: build
	$(GO) test -run '^$$' -bench BenchmarkExec -benchtime 2x ./internal/bench/
	$(GO) run ./scripts/benchexec -out BENCH_exec.json -baseline BENCH_exec.baseline.json -reps 8
	$(GO) run ./scripts/validatejson BENCH_exec.json

# scale measures multi-core process scaling: 8 concurrent processes of
# one machine at GOMAXPROCS={1,2,8} plus injected-abort legs, writes
# BENCH_scale.json, validates its schema, and fails if per-process
# digests differ across any leg, if aggregate 8-vs-1 throughput is below
# the core-scaled floor (3x on an 8-core host), or if the speedup
# regressed >20% against the committed baseline (same core class only).
scale: build
	$(GO) run ./scripts/benchexec -scale -out BENCH_scale.json -baseline BENCH_scale.baseline.json
	$(GO) run ./scripts/validatejson BENCH_scale.json

# serve builds and launches caratd in the foreground with the sample
# config (Ctrl-C / SIGTERM drains gracefully). Override the bind with
# SERVE_ADDR=host:port.
SERVE_ADDR ?=
serve: build
	$(GO) run ./cmd/caratd -config configs/caratd.sample.json $(if $(SERVE_ADDR),-addr $(SERVE_ADDR))

# loadtest boots caratd on an ephemeral port, drives LOAD_SESSIONS
# concurrent loadgen sessions (steady + overload legs) against it, writes
# and validates BENCH_server.load.json, then drains the daemon. Fails on
# any digest mismatch, failed request, invariant violation, or if the
# overload leg never saw a 429.
LOAD_SESSIONS ?= 1000
loadtest: build
	sh ./scripts/loadtest.sh $(LOAD_SESSIONS)

# lint runs staticcheck when it is installed (CI always installs it; a
# developer box without it gets a warning, not a failure).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi

# cover enforces the coverage floor: total statement coverage must not
# drop below COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the floor $(COVER_FLOOR)%"; exit 1; }

# soak runs seeded chaos runs (multi-process churn/defrag/tiering/swap
# under randomized fault schedules) and requires byte-identical replay and
# zero invariant violations per seed. See scripts/soak.
soak: build
	$(GO) run ./scripts/soak -seeds $(SOAK_SEEDS) -start $(SOAK_START) -out soak.json
	$(GO) run ./scripts/validatejson soak.json

# fuzz runs each native fuzz target for a short budget (the differential
# invariants over generated programs; seeds replay in plain `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDifferentialPipeline -fuzztime $(FUZZTIME) ./internal/vm/
	$(GO) test -run '^$$' -fuzz FuzzDifferentialMoves -fuzztime $(FUZZTIME) ./internal/vm/
	$(GO) test -run '^$$' -fuzz FuzzGuardsAgreeOnForgedPointers -fuzztime $(FUZZTIME) ./internal/vm/
	$(GO) test -run '^$$' -fuzz FuzzGroupMoves -fuzztime $(FUZZTIME) ./internal/vm/

# workflowsync guards against stale shadow copies of the CI workflows: if
# a copy of a workflow file ever appears under scripts/, it must be
# byte-identical to the canonical file in .github/workflows/ (historically
# such copies drifted silently). No copy present = nothing to check.
workflowsync:
	@for f in ci.yml soak.yml; do \
		if [ -f scripts/$$f ]; then \
			diff -u .github/workflows/$$f scripts/$$f || \
				{ echo "workflowsync: scripts/$$f drifted from .github/workflows/$$f (delete the copy or resync it)"; exit 1; }; \
		fi; \
	done

check: fmt vet build test race workflowsync
