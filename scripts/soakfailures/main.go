// Command soakfailures prints the failed seeds from a carat.soak.result
// report, one per line. The soak CI workflow uses it to re-run each
// failing seed with tracing enabled before uploading artifacts.
//
// Usage:
//
//	go run ./scripts/soakfailures soak.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: soakfailures <soak.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "soakfailures:", err)
		os.Exit(1)
	}
	var doc struct {
		Schema string `json:"schema"`
		Seeds  []struct {
			Seed            int64  `json:"seed"`
			ReplayIdentical bool   `json:"replay_identical"`
			Error           string `json:"error"`
		} `json:"seeds"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintln(os.Stderr, "soakfailures:", err)
		os.Exit(1)
	}
	if doc.Schema != "carat.soak.result" {
		fmt.Fprintf(os.Stderr, "soakfailures: unexpected schema %q\n", doc.Schema)
		os.Exit(1)
	}
	for _, s := range doc.Seeds {
		if s.Error != "" || !s.ReplayIdentical {
			fmt.Println(s.Seed)
		}
	}
}
