#!/bin/sh
# Server smoke: boot caratd, wait for /readyz, POST a module, run it twice
# (the second run must be a cache hit and must produce the same digest),
# scrape /metrics, run a small loadgen pass, and validate every document
# (Prometheus text, carat.server.result, carat.server.load). Finishes with
# a SIGTERM drain and requires a clean exit. Run by `make smoke`.
set -eu

GO=${GO:-go}
SESSIONS=${SESSIONS:-64}
# Pin the daemon (and loadgen) to several cores explicitly: the loadgen
# pass asserts the server's peak in-flight count exceeded 1, i.e. tenant
# executions really overlapped. With an implicit GOMAXPROCS=1 the daemon
# can serialize every run and the old smoke would still pass.
GOMAXPROCS=${GOMAXPROCS:-4}
export GOMAXPROCS
tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/caratd" ./cmd/caratd
$GO build -o "$tmp/loadgen" ./scripts/loadgen

"$tmp/caratd" -addr 127.0.0.1:0 2>"$tmp/stderr.log" &
pid=$!

# The daemon prints its bound address to stderr before serving requests.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|^caratd: listening on http://||p' "$tmp/stderr.log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server smoke: caratd died:"; cat "$tmp/stderr.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "server smoke: no bind line in stderr"; cat "$tmp/stderr.log"; exit 1; }

# /readyz is 200 from startup until drain begins. Fail fast if the daemon
# dies mid-poll — otherwise this loop burns its full timeout retrying a
# dead port and the real error (in stderr.log) never surfaces.
code=000
i=0
while [ $i -lt 100 ]; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/readyz" || echo 000)
    [ "$code" = 200 ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server smoke: caratd died:"; cat "$tmp/stderr.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ "$code" = 200 ] || {
    echo "server smoke: /readyz never turned 200 (last $code); daemon stderr:"
    cat "$tmp/stderr.log"
    exit 1
}

# Precompile a module, then run it twice by ref with the same seed.
cat >"$tmp/module.json" <<'EOF'
{"tenant": "smoke", "name": "smoke-mod", "source": "func main(): int { var s = 1; for (var i = 0; i < 1000; i = i + 1) { s = (s * 31 + i) & 65535; } print_int(s); return s; }"}
EOF
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$tmp/module.json" "http://$addr/v1/modules" >"$tmp/compile.json"
ref=$(sed -n 's/.*"ref"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/p' "$tmp/compile.json")
[ -n "$ref" ] || { echo "server smoke: no ref in compile response:"; cat "$tmp/compile.json"; exit 1; }

printf '{"tenant": "smoke", "ref": "%s", "seed": 7}' "$ref" >"$tmp/run.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$tmp/run.json" "http://$addr/v1/run" >"$tmp/result1.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$tmp/run.json" "http://$addr/v1/run" >"$tmp/result2.json"
$GO run ./scripts/validatejson "$tmp/result1.json" "$tmp/result2.json"

d1=$(sed -n 's/.*"digest"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/p' "$tmp/result1.json")
d2=$(sed -n 's/.*"digest"[[:space:]]*:[[:space:]]*"\([^"]*\)".*/\1/p' "$tmp/result2.json")
[ -n "$d1" ] && [ "$d1" = "$d2" ] || {
    echo "server smoke: digests differ across identical runs: '$d1' vs '$d2'"; exit 1; }

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/metrics" >"$tmp/metrics.prom"
$GO run ./scripts/validatejson -prom "$tmp/metrics.prom"
grep -q '^carat_server_requests_total' "$tmp/metrics.prom" || {
    echo "server smoke: carat_server_requests_total missing from /metrics"; exit 1; }

# A small load pass: concurrent sessions plus an overload burst that must
# see 429s; its carat.server.load document must validate.
"$tmp/loadgen" -addr "$addr" -sessions "$SESSIONS" -requests 2 -burst 96 -out "$tmp/load.json"
$GO run ./scripts/validatejson "$tmp/load.json"

# Graceful drain: SIGTERM must flip /readyz to 503 and exit cleanly.
kill -TERM "$pid"
wait "$pid" || { echo "server smoke: caratd exited nonzero after drain:"; cat "$tmp/stderr.log"; exit 1; }
pid=""
grep -q 'drained cleanly' "$tmp/stderr.log" || {
    echo "server smoke: no clean-drain line:"; cat "$tmp/stderr.log"; exit 1; }

echo "server smoke: ok"
