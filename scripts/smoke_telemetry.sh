#!/bin/sh
# Telemetry smoke: start caratbench with a live -http server, wait for
# /readyz to report the run finished, scrape /metrics and /profile, and
# validate both (Prometheus text exposition and carat.profile v1). Run by
# `make smoke`.
set -eu

GO=${GO:-go}
WORKERS=${WORKERS:-0}
tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/caratbench" ./cmd/caratbench

"$tmp/caratbench" -exp table3 -scale test -workers "$WORKERS" \
    -http 127.0.0.1:0 -http-linger 60s \
    >"$tmp/stdout.log" 2>"$tmp/stderr.log" &
pid=$!

# The server prints its bound address to stderr as soon as it is up.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|^caratbench: telemetry on http://||p' "$tmp/stderr.log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "telemetry smoke: caratbench died:"; cat "$tmp/stderr.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "telemetry smoke: no telemetry address in stderr"; cat "$tmp/stderr.log"; exit 1; }

# /readyz turns 200 once the experiments have finished: final metrics and
# the complete profile are then scrapeable.
code=000
i=0
while [ $i -lt 600 ]; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/readyz" || echo 000)
    [ "$code" = 200 ] && break
    kill -0 "$pid" 2>/dev/null || { echo "telemetry smoke: caratbench died:"; cat "$tmp/stderr.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ "$code" = 200 ] || { echo "telemetry smoke: /readyz never turned 200 (last $code)"; exit 1; }

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/metrics" >"$tmp/metrics.prom"
curl -fsS "http://$addr/profile" >"$tmp/profile.json"

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

$GO run ./scripts/validatejson -prom "$tmp/metrics.prom"
$GO run ./scripts/validatejson "$tmp/profile.json"
echo "telemetry smoke: ok"
