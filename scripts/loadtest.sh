#!/bin/sh
# Load test: boot caratd with the sample config on an ephemeral port, run
# scripts/loadgen against it (steady + overload legs), validate the
# carat.server.load document, and drain the daemon. Invoked by
# `make loadtest`; the session count is $1 (default 1000).
set -eu

GO=${GO:-go}
SESSIONS=${1:-1000}
OUT=${OUT:-BENCH_server.load.json}
# Explicit multi-core budget for the daemon: loadgen asserts the server's
# peak in-flight count exceeded 1 (real overlap between tenant runs), and
# an implicit GOMAXPROCS=1 host would serialize them silently.
GOMAXPROCS=${GOMAXPROCS:-4}
export GOMAXPROCS
tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/caratd" ./cmd/caratd
$GO build -o "$tmp/loadgen" ./scripts/loadgen

"$tmp/caratd" -config configs/caratd.sample.json -addr 127.0.0.1:0 2>"$tmp/stderr.log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|^caratd: listening on http://||p' "$tmp/stderr.log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "loadtest: caratd died:"; cat "$tmp/stderr.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "loadtest: no bind line in stderr"; cat "$tmp/stderr.log"; exit 1; }

"$tmp/loadgen" -addr "$addr" -sessions "$SESSIONS" -requests 3 -burst 192 -out "$OUT"
$GO run ./scripts/validatejson "$OUT"

kill -TERM "$pid"
wait "$pid" || { echo "loadtest: caratd exited nonzero after drain:"; cat "$tmp/stderr.log"; exit 1; }
pid=""
echo "loadtest: ok — report in $OUT"
