// Command soak runs seeded chaos soak tests: multi-process
// churn/defrag/tiering/swap workloads under randomized fault schedules
// (see internal/fault). For every seed it runs the identical workload
// TWICE and requires the two runs to be byte-identical — same final
// cycle count, same metrics snapshot, same policy decision log, same
// physical-memory checksum — and requires the harness integrity check
// and the allocation-table invariants to hold. A failure therefore comes
// with its reproducer: the seed.
//
// Usage:
//
//	go run ./scripts/soak -seeds 32              # seeds 1..32
//	go run ./scripts/soak -seeds 32 -start 97    # rotating window (CI)
//	go run ./scripts/soak -seed 17 -steps 400    # replay one seed
//	go run ./scripts/soak -seed 17 -trace t.json # with a Chrome trace
//	go run ./scripts/soak -seeds 8 -out soak.json
//
// The report is a versioned carat.soak.result v1 JSON document
// (validated by scripts/validatejson). Exit status is nonzero if any
// seed failed, and the failing seeds' replay commands are printed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"carat/internal/fault"
	"carat/internal/mmpolicy"
	"carat/internal/obs"
)

// Schema identifies the soak report format; bump Version on any
// incompatible field change.
const (
	Schema  = "carat.soak.result"
	Version = 1
)

// SeedResult is one seed's outcome: the fault schedule it ran under, the
// replay digest, and what the faults exercised.
type SeedResult struct {
	Seed  int64              `json:"seed"`
	Steps int                `json:"steps"`
	Rates map[string]float64 `json:"rates"`

	Cycles      uint64 `json:"cycles"`
	MemChecksum string `json:"mem_checksum"`
	Injected    uint64 `json:"faults_injected"`
	Rollbacks   uint64 `json:"move_rollbacks"`
	Retries     uint64 `json:"move_retries"`
	Pins        uint64 `json:"pins"`
	SwapRetries uint64 `json:"swap_retries"`

	ReplayIdentical bool   `json:"replay_identical"`
	Error           string `json:"error,omitempty"`
}

// Document is the full soak report.
type Document struct {
	Schema  string       `json:"schema"`
	Version int          `json:"version"`
	Steps   int          `json:"steps"`
	Seeds   []SeedResult `json:"seeds"`
	Passed  int          `json:"passed"`
	Failed  int          `json:"failed"`
}

// Per-point rate ceilings for the randomized schedules. The recovery
// paths are bounded (move retries pin after 4 failures, swap-in retries
// cap at 16 attempts), so the ceilings are chosen to keep exhausting a
// retry bound out of reach while still firing every point constantly:
// e.g. sixteen consecutive swap-in failures at rate 0.3 is ~4e-9.
var rateCeilings = map[fault.Point]float64{
	fault.KernelVeto: 0.20,
	fault.MoveAbort:  0.15,
	fault.PatchFail:  0.05,
	fault.SwapOutIO:  0.20,
	fault.SwapInIO:   0.30,
	fault.SwapDelay:  0.30,
	fault.FlushFail:  0.20,
}

// schedule derives a per-point rate schedule from the seed: every point
// gets a rate in [0, ceiling), with a point occasionally disabled
// entirely so zero-rate paths are exercised too.
func schedule(seed int64) map[fault.Point]float64 {
	rng := rand.New(rand.NewSource(seed))
	rates := make(map[fault.Point]float64, len(fault.Points))
	for _, p := range fault.Points {
		if rng.Float64() < 0.15 {
			continue // this point stays quiet for the whole seed
		}
		rates[p] = rng.Float64() * rateCeilings[p]
	}
	return rates
}

// digest is everything a replay must reproduce byte-for-byte.
type digest struct {
	cycles  uint64
	memSum  uint64
	metrics []byte // registry snapshot JSON (sorted keys)
	policy  []byte // carat.policy decision document JSON
}

// runSeed executes one soak run: build the machine, thread the seeded
// injector through every layer, run the workloads, verify integrity, and
// return the digest. trace, when non-nil, receives the run's events.
func runSeed(seed int64, steps int, rates map[fault.Point]float64, tr *obs.Tracer) (digest, SeedResult, error) {
	reg := obs.NewRegistry()
	inj := fault.New(seed, reg)
	inj.SetTracer(tr)
	for p, r := range rates {
		inj.SetRate(p, r)
	}

	// The workload mix mirrors the bench policy experiment at test scale:
	// two fragmentation generators, hot memory tiering must not evict,
	// and cold memory it must. Proc seeds derive from the soak seed so
	// different seeds run different allocation histories.
	prng := rand.New(rand.NewSource(seed ^ 0x5eed))
	h, err := mmpolicy.NewHarness(mmpolicy.HarnessConfig{
		MemBytes:  1 << 21, // 512 pages
		TickEvery: 40_000,
		Procs: []mmpolicy.ProcSpec{
			{Name: "churn-a", Kind: mmpolicy.Churn, Slots: 64 + prng.Intn(64), MaxPages: 4, Seed: prng.Int63()},
			{Name: "churn-b", Kind: mmpolicy.Churn, Slots: 64 + prng.Intn(64), MaxPages: 3, Seed: prng.Int63()},
			{Name: "stream", Kind: mmpolicy.Stream, Slots: 8 + prng.Intn(8), MaxPages: 2, Seed: prng.Int63()},
			{Name: "cold", Kind: mmpolicy.ColdStore, Slots: 32 + prng.Intn(32), MaxPages: 2, Seed: prng.Int63()},
		},
		Policies: []mmpolicy.Policy{
			mmpolicy.NewDefrag(64),
			mmpolicy.NewTiering(),
			mmpolicy.NewNUMARebalance(),
		},
		Obs:   reg,
		Trace: tr,
		Fault: inj,
	})
	if err != nil {
		return digest{}, SeedResult{}, err
	}
	if err := h.Run(steps); err != nil {
		return digest{}, SeedResult{}, fmt.Errorf("run: %w", err)
	}
	// Integrity: every slot still reaches its stamped allocation, and the
	// allocation-table invariants hold unconditionally (CheckInvariants,
	// not the caratdebug-gated variant — the soak always checks).
	if err := h.Verify(); err != nil {
		return digest{}, SeedResult{}, fmt.Errorf("integrity: %w", err)
	}
	for _, wp := range h.Procs {
		if err := wp.MP.RT.Table.CheckInvariants(); err != nil {
			return digest{}, SeedResult{}, fmt.Errorf("invariants (%s): %w", wp.Spec.Name, err)
		}
	}

	var metrics bytes.Buffer
	if err := reg.WriteJSON(&metrics); err != nil {
		return digest{}, SeedResult{}, err
	}
	var policy bytes.Buffer
	if err := h.D.Report().WriteJSON(&policy); err != nil {
		return digest{}, SeedResult{}, err
	}
	d := digest{
		cycles:  h.Cycles,
		memSum:  h.K.Mem.Checksum(),
		metrics: metrics.Bytes(),
		policy:  policy.Bytes(),
	}
	res := SeedResult{
		Seed:        seed,
		Steps:       steps,
		Cycles:      h.Cycles,
		MemChecksum: fmt.Sprintf("%016x", d.memSum),
		Injected:    inj.InjectedCount(),
		Rollbacks:   reg.Counter("carat.runtime.move_rollbacks").Get(),
		Retries:     reg.Counter("carat.policy.move_retries").Get(),
		Pins:        reg.Counter("carat.policy.pins").Get(),
		SwapRetries: reg.Counter("carat.policy.swap_retries").Get(),
	}
	res.Rates = make(map[string]float64, len(rates))
	for p, r := range rates {
		res.Rates[string(p)] = r
	}
	return d, res, nil
}

// soakSeed runs a seed twice and compares the digests.
func soakSeed(seed int64, steps int, tr *obs.Tracer) SeedResult {
	rates := schedule(seed)
	d1, res, err := runSeed(seed, steps, rates, tr)
	if err != nil {
		return SeedResult{Seed: seed, Steps: steps, Error: err.Error()}
	}
	d2, _, err := runSeed(seed, steps, rates, nil)
	if err != nil {
		res.Error = fmt.Sprintf("replay: %v", err)
		return res
	}
	switch {
	case d1.cycles != d2.cycles:
		res.Error = fmt.Sprintf("replay diverged: cycles %d vs %d", d1.cycles, d2.cycles)
	case d1.memSum != d2.memSum:
		res.Error = fmt.Sprintf("replay diverged: memory %016x vs %016x", d1.memSum, d2.memSum)
	case !bytes.Equal(d1.metrics, d2.metrics):
		res.Error = "replay diverged: metrics snapshots differ"
	case !bytes.Equal(d1.policy, d2.policy):
		res.Error = "replay diverged: policy decision logs differ"
	default:
		res.ReplayIdentical = true
	}
	return res
}

func main() {
	seeds := flag.Int("seeds", 8, "number of consecutive seeds to soak")
	start := flag.Int64("start", 1, "first seed (CI rotates this nightly)")
	one := flag.Int64("seed", 0, "run exactly this seed (overrides -seeds/-start)")
	steps := flag.Int("steps", 400, "workload rounds per run")
	out := flag.String("out", "", "write the carat.soak.result JSON report here")
	traceFile := flag.String("trace", "", "write a Chrome trace of the first run of the first seed")
	flag.Parse()

	first, count := *start, *seeds
	if *one != 0 {
		first, count = *one, 1
	}

	var tr *obs.Tracer
	var traceClose func() error
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(1)
		}
		tr = obs.NewTracer(f, nil)
		traceClose = func() error {
			if err := tr.Close(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	doc := Document{Schema: Schema, Version: Version, Steps: *steps}
	for i := 0; i < count; i++ {
		seed := first + int64(i)
		var seedTr *obs.Tracer
		if i == 0 {
			seedTr = tr // only the first seed's first run is traced
		}
		res := soakSeed(seed, *steps, seedTr)
		doc.Seeds = append(doc.Seeds, res)
		if res.Error == "" && res.ReplayIdentical {
			doc.Passed++
			fmt.Printf("seed %4d: ok    cycles=%d injected=%d rollbacks=%d retries=%d pins=%d\n",
				seed, res.Cycles, res.Injected, res.Rollbacks, res.Retries, res.Pins)
		} else {
			doc.Failed++
			fmt.Printf("seed %4d: FAIL  %s\n", seed, res.Error)
		}
	}

	if traceClose != nil {
		if err := traceClose(); err != nil {
			fmt.Fprintln(os.Stderr, "soak: trace:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(&doc)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "soak:", werr)
			os.Exit(1)
		}
	}

	fmt.Printf("soak: %d passed, %d failed (seeds %d..%d, %d steps)\n",
		doc.Passed, doc.Failed, first, first+int64(count)-1, *steps)
	if doc.Failed > 0 {
		for _, s := range doc.Seeds {
			if s.Error != "" || !s.ReplayIdentical {
				fmt.Printf("replay: go run ./scripts/soak -seed %d -steps %d -trace seed%d.trace.json\n",
					s.Seed, *steps, s.Seed)
			}
		}
		os.Exit(1)
	}
}
