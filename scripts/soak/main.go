// Command soak runs seeded chaos soak tests: multi-process
// churn/defrag/tiering/swap workloads under randomized fault schedules
// (see internal/fault). For every seed it runs the identical workload
// TWICE and requires the two runs to be byte-identical — same final
// cycle count, same metrics snapshot, same policy decision log, same
// physical-memory checksum — and requires the harness integrity check
// and the allocation-table invariants to hold. A failure therefore comes
// with its reproducer: the seed.
//
// With -pausebudget the soak additionally runs two bounded-pause legs
// per seed: an incremental leg under the identical fault schedule, which
// must match the legacy leg's cycle clock and memory image exactly while
// keeping every recorded pause within one batch plus a barrier round
// trip, and a chaos leg that also aborts moves at batch boundaries
// (fault.MoveBatch) and must stay deterministic and bounded while doing
// so.
//
// Usage:
//
//	go run ./scripts/soak -seeds 32              # seeds 1..32
//	go run ./scripts/soak -seeds 32 -start 97    # rotating window (CI)
//	go run ./scripts/soak -seed 17 -steps 400    # replay one seed
//	go run ./scripts/soak -seed 17 -trace t.json # with a Chrome trace
//	go run ./scripts/soak -seeds 8 -out soak.json
//
// The report is a versioned carat.soak.result v1 JSON document
// (validated by scripts/validatejson). Exit status is nonzero if any
// seed failed, and the failing seeds' replay commands are printed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"carat/internal/fault"
	"carat/internal/mmpolicy"
	"carat/internal/obs"
	"carat/internal/runtime"
)

// Schema identifies the soak report format; bump Version on any
// incompatible field change.
const (
	Schema  = "carat.soak.result"
	Version = 1
)

// SeedResult is one seed's outcome: the fault schedule it ran under, the
// replay digest, and what the faults exercised.
type SeedResult struct {
	Seed  int64              `json:"seed"`
	Steps int                `json:"steps"`
	Rates map[string]float64 `json:"rates"`

	Cycles      uint64 `json:"cycles"`
	MemChecksum string `json:"mem_checksum"`
	Injected    uint64 `json:"faults_injected"`
	Rollbacks   uint64 `json:"move_rollbacks"`
	Retries     uint64 `json:"move_retries"`
	Pins        uint64 `json:"pins"`
	SwapRetries uint64 `json:"swap_retries"`

	ReplayIdentical bool   `json:"replay_identical"`
	Error           string `json:"error,omitempty"`

	// Bounded-pause legs, populated when -pausebudget is set (compatible
	// v1 additions). The incremental leg shares the legacy leg's fault
	// schedule; the chaos leg additionally aborts moves at batch
	// boundaries.
	PauseBudget    uint64  `json:"pause_budget_cycles,omitempty"`
	PauseBound     uint64  `json:"pause_bound_cycles,omitempty"` // one batch + barrier round trip
	LegacyP99      float64 `json:"legacy_pause_p99,omitempty"`
	IncrementalP99 float64 `json:"incremental_pause_p99,omitempty"`
	IncrementalMax uint64  `json:"incremental_pause_max,omitempty"`
	ChaosMax       uint64  `json:"chaos_pause_max,omitempty"`
	ChaosRollbacks uint64  `json:"chaos_rollbacks,omitempty"`
}

// Document is the full soak report.
type Document struct {
	Schema  string       `json:"schema"`
	Version int          `json:"version"`
	Steps   int          `json:"steps"`
	Seeds   []SeedResult `json:"seeds"`
	Passed  int          `json:"passed"`
	Failed  int          `json:"failed"`
}

// Per-point rate ceilings for the randomized schedules. The recovery
// paths are bounded (move retries pin after 4 failures, swap-in retries
// cap at 16 attempts), so the ceilings are chosen to keep exhausting a
// retry bound out of reach while still firing every point constantly:
// e.g. sixteen consecutive swap-in failures at rate 0.3 is ~4e-9.
// chaosBatchRate is the fault.MoveBatch rate for the chaos leg. It is
// deliberately NOT in rateCeilings: batch-boundary checks only happen in
// incremental mode, so scheduling the point would let the incremental leg
// consume injector draws the legacy leg never sees and break the
// cross-mode cycle/memory parity the soak asserts. The chaos leg opts in
// explicitly and gives up cross-mode comparison in exchange.
const chaosBatchRate = 0.10

var rateCeilings = map[fault.Point]float64{
	fault.KernelVeto: 0.20,
	fault.MoveAbort:  0.15,
	fault.PatchFail:  0.05,
	fault.SwapOutIO:  0.20,
	fault.SwapInIO:   0.30,
	fault.SwapDelay:  0.30,
	fault.FlushFail:  0.20,
}

// schedule derives a per-point rate schedule from the seed: every point
// gets a rate in [0, ceiling), with a point occasionally disabled
// entirely so zero-rate paths are exercised too.
func schedule(seed int64) map[fault.Point]float64 {
	rng := rand.New(rand.NewSource(seed))
	rates := make(map[fault.Point]float64, len(fault.Points))
	for _, p := range fault.Points {
		if rng.Float64() < 0.15 {
			continue // this point stays quiet for the whole seed
		}
		rates[p] = rng.Float64() * rateCeilings[p]
	}
	return rates
}

// digest is everything a replay must reproduce byte-for-byte, plus the
// pause tail the bounded-pause legs assert on.
type digest struct {
	cycles    uint64
	memSum    uint64
	metrics   []byte // registry snapshot JSON (sorted keys)
	policy    []byte // carat.policy decision document JSON
	pauseMax  uint64
	pauseP99  float64
	rollbacks uint64
}

// runSeed executes one soak run: build the machine, thread the seeded
// injector through every layer, run the workloads, verify integrity, and
// return the digest. trace, when non-nil, receives the run's events.
// pauseBudget > 0 switches every managed process to the incremental move
// protocol sized to that budget.
func runSeed(seed int64, steps int, rates map[fault.Point]float64, pauseBudget uint64, tr *obs.Tracer) (digest, SeedResult, error) {
	reg := obs.NewRegistry()
	inj := fault.New(seed, reg)
	inj.SetTracer(tr)
	for p, r := range rates {
		inj.SetRate(p, r)
	}

	// The workload mix mirrors the bench policy experiment at test scale:
	// two fragmentation generators, hot memory tiering must not evict,
	// and cold memory it must. Proc seeds derive from the soak seed so
	// different seeds run different allocation histories.
	prng := rand.New(rand.NewSource(seed ^ 0x5eed))
	h, err := mmpolicy.NewHarness(mmpolicy.HarnessConfig{
		MemBytes:  1 << 21, // 512 pages
		TickEvery: 40_000,
		Procs: []mmpolicy.ProcSpec{
			{Name: "churn-a", Kind: mmpolicy.Churn, Slots: 64 + prng.Intn(64), MaxPages: 4, Seed: prng.Int63()},
			{Name: "churn-b", Kind: mmpolicy.Churn, Slots: 64 + prng.Intn(64), MaxPages: 3, Seed: prng.Int63()},
			{Name: "stream", Kind: mmpolicy.Stream, Slots: 8 + prng.Intn(8), MaxPages: 2, Seed: prng.Int63()},
			{Name: "cold", Kind: mmpolicy.ColdStore, Slots: 32 + prng.Intn(32), MaxPages: 2, Seed: prng.Int63()},
		},
		Policies: []mmpolicy.Policy{
			mmpolicy.NewDefrag(64),
			mmpolicy.NewTiering(),
			mmpolicy.NewNUMARebalance(),
		},
		Obs:         reg,
		Trace:       tr,
		Fault:       inj,
		PauseBudget: pauseBudget,
	})
	if err != nil {
		return digest{}, SeedResult{}, err
	}
	if err := h.Run(steps); err != nil {
		return digest{}, SeedResult{}, fmt.Errorf("run: %w", err)
	}
	// Integrity: every slot still reaches its stamped allocation, and the
	// allocation-table invariants hold unconditionally (CheckInvariants,
	// not the caratdebug-gated variant — the soak always checks).
	if err := h.Verify(); err != nil {
		return digest{}, SeedResult{}, fmt.Errorf("integrity: %w", err)
	}
	for _, wp := range h.Procs {
		if err := wp.MP.RT.Table.CheckInvariants(); err != nil {
			return digest{}, SeedResult{}, fmt.Errorf("invariants (%s): %w", wp.Spec.Name, err)
		}
	}

	var metrics bytes.Buffer
	if err := reg.WriteJSON(&metrics); err != nil {
		return digest{}, SeedResult{}, err
	}
	var policy bytes.Buffer
	if err := h.D.Report().WriteJSON(&policy); err != nil {
		return digest{}, SeedResult{}, err
	}
	ps := reg.Histogram(runtime.PauseHist).Snapshot()
	d := digest{
		cycles:    h.Cycles,
		memSum:    h.K.Mem.Checksum(),
		metrics:   metrics.Bytes(),
		policy:    policy.Bytes(),
		pauseMax:  ps.Max,
		pauseP99:  ps.P99,
		rollbacks: reg.Counter("carat.runtime.move_rollbacks").Get(),
	}
	res := SeedResult{
		Seed:        seed,
		Steps:       steps,
		Cycles:      h.Cycles,
		MemChecksum: fmt.Sprintf("%016x", d.memSum),
		Injected:    inj.InjectedCount(),
		Rollbacks:   reg.Counter("carat.runtime.move_rollbacks").Get(),
		Retries:     reg.Counter("carat.policy.move_retries").Get(),
		Pins:        reg.Counter("carat.policy.pins").Get(),
		SwapRetries: reg.Counter("carat.policy.swap_retries").Get(),
	}
	res.Rates = make(map[string]float64, len(rates))
	for p, r := range rates {
		res.Rates[string(p)] = r
	}
	return d, res, nil
}

// replayPair runs the same configuration twice and reports how the
// digests diverge ("" = byte-identical).
func replayPair(seed int64, steps int, rates map[fault.Point]float64, budget uint64, tr *obs.Tracer) (digest, SeedResult, string) {
	d1, res, err := runSeed(seed, steps, rates, budget, tr)
	if err != nil {
		return digest{}, SeedResult{Seed: seed, Steps: steps}, err.Error()
	}
	d2, _, err := runSeed(seed, steps, rates, budget, nil)
	if err != nil {
		return d1, res, fmt.Sprintf("replay: %v", err)
	}
	switch {
	case d1.cycles != d2.cycles:
		return d1, res, fmt.Sprintf("replay diverged: cycles %d vs %d", d1.cycles, d2.cycles)
	case d1.memSum != d2.memSum:
		return d1, res, fmt.Sprintf("replay diverged: memory %016x vs %016x", d1.memSum, d2.memSum)
	case !bytes.Equal(d1.metrics, d2.metrics):
		return d1, res, "replay diverged: metrics snapshots differ"
	case !bytes.Equal(d1.policy, d2.policy):
		return d1, res, "replay diverged: policy decision logs differ"
	}
	return d1, res, ""
}

// soakSeed runs a seed's legacy leg (twice, byte-compared) and, with a
// pause budget, the incremental and chaos legs with their own replay and
// bounded-pause assertions.
func soakSeed(seed int64, steps int, budget uint64, tr *obs.Tracer) SeedResult {
	rates := schedule(seed)
	dLegacy, res, diverged := replayPair(seed, steps, rates, 0, tr)
	if diverged != "" {
		res.Seed, res.Steps, res.Error = seed, steps, diverged
		return res
	}
	res.ReplayIdentical = true
	if budget == 0 {
		return res
	}

	batch := runtime.BatchForBudget(budget)
	bound := runtime.PauseBound(batch)
	res.PauseBudget = budget
	res.PauseBound = bound
	res.LegacyP99 = dLegacy.pauseP99

	// Incremental leg: same fault schedule, bounded pauses. Everything the
	// program and the fault stream can observe must match the legacy leg —
	// the modeled cycle clock and the physical memory image — while the
	// pause attribution (and the injector's check counter, which ticks at
	// every batch boundary) legitimately differs.
	dIncr, _, diverged := replayPair(seed, steps, rates, budget, nil)
	res.IncrementalP99 = dIncr.pauseP99
	res.IncrementalMax = dIncr.pauseMax
	switch {
	case diverged != "":
		res.Error = "incremental " + diverged
	case dIncr.cycles != dLegacy.cycles:
		res.Error = fmt.Sprintf("mode divergence: cycles %d (legacy) vs %d (incremental)", dLegacy.cycles, dIncr.cycles)
	case dIncr.memSum != dLegacy.memSum:
		res.Error = fmt.Sprintf("mode divergence: memory %016x (legacy) vs %016x (incremental)", dLegacy.memSum, dIncr.memSum)
	case dIncr.pauseMax > bound:
		res.Error = fmt.Sprintf("pause over bound: %d > %d (batch %d + barrier)", dIncr.pauseMax, bound, batch)
	case dIncr.pauseP99 > 0 && dLegacy.pauseP99 < 5*dIncr.pauseP99:
		res.Error = fmt.Sprintf("p99 drop under 5x: legacy %.0f vs incremental %.0f", dLegacy.pauseP99, dIncr.pauseP99)
	}
	if res.Error != "" {
		res.ReplayIdentical = false
		return res
	}

	// Chaos leg: moves abort at batch boundaries (fault.MoveBatch armed as
	// a scheduled rate) while every pause stays within the bound. The extra
	// injector draws make this leg incomparable to the other two, but it
	// must still replay byte-identically against itself.
	chaosRates := make(map[fault.Point]float64, len(rates)+1)
	for p, r := range rates {
		chaosRates[p] = r
	}
	chaosRates[fault.MoveBatch] = chaosBatchRate
	dChaos, _, diverged := replayPair(seed, steps, chaosRates, budget, nil)
	res.ChaosMax = dChaos.pauseMax
	res.ChaosRollbacks = dChaos.rollbacks
	switch {
	case diverged != "":
		res.Error = "chaos " + diverged
	case dChaos.pauseMax > bound:
		res.Error = fmt.Sprintf("chaos pause over bound: %d > %d", dChaos.pauseMax, bound)
	}
	if res.Error != "" {
		res.ReplayIdentical = false
	}
	return res
}

func main() {
	seeds := flag.Int("seeds", 8, "number of consecutive seeds to soak")
	start := flag.Int64("start", 1, "first seed (CI rotates this nightly)")
	one := flag.Int64("seed", 0, "run exactly this seed (overrides -seeds/-start)")
	steps := flag.Int("steps", 400, "workload rounds per run")
	pauseBudget := flag.Uint64("pausebudget", 0,
		"run bounded-pause legs per seed: incremental (parity + pause bound + 5x p99 drop) and chaos (batch-boundary move aborts)")
	out := flag.String("out", "", "write the carat.soak.result JSON report here")
	traceFile := flag.String("trace", "", "write a Chrome trace of the first run of the first seed")
	flag.Parse()

	first, count := *start, *seeds
	if *one != 0 {
		first, count = *one, 1
	}

	var tr *obs.Tracer
	var traceClose func() error
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(1)
		}
		tr = obs.NewTracer(f, nil)
		traceClose = func() error {
			if err := tr.Close(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	doc := Document{Schema: Schema, Version: Version, Steps: *steps}
	for i := 0; i < count; i++ {
		seed := first + int64(i)
		var seedTr *obs.Tracer
		if i == 0 {
			seedTr = tr // only the first seed's first run is traced
		}
		res := soakSeed(seed, *steps, *pauseBudget, seedTr)
		doc.Seeds = append(doc.Seeds, res)
		if res.Error == "" && res.ReplayIdentical {
			doc.Passed++
			fmt.Printf("seed %4d: ok    cycles=%d injected=%d rollbacks=%d retries=%d pins=%d\n",
				seed, res.Cycles, res.Injected, res.Rollbacks, res.Retries, res.Pins)
			if *pauseBudget > 0 {
				fmt.Printf("           pause p99 %.0f -> %.0f (max %d <= bound %d), chaos max %d rollbacks %d\n",
					res.LegacyP99, res.IncrementalP99, res.IncrementalMax, res.PauseBound,
					res.ChaosMax, res.ChaosRollbacks)
			}
		} else {
			doc.Failed++
			fmt.Printf("seed %4d: FAIL  %s\n", seed, res.Error)
		}
	}

	if traceClose != nil {
		if err := traceClose(); err != nil {
			fmt.Fprintln(os.Stderr, "soak: trace:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(&doc)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "soak:", werr)
			os.Exit(1)
		}
	}

	fmt.Printf("soak: %d passed, %d failed (seeds %d..%d, %d steps)\n",
		doc.Passed, doc.Failed, first, first+int64(count)-1, *steps)
	if doc.Failed > 0 {
		for _, s := range doc.Seeds {
			if s.Error != "" || !s.ReplayIdentical {
				fmt.Printf("replay: go run ./scripts/soak -seed %d -steps %d -trace seed%d.trace.json\n",
					s.Seed, *steps, s.Seed)
			}
		}
		os.Exit(1)
	}
}
