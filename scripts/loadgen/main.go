// Command loadgen drives concurrent mixed-workload sessions against a
// running caratd and emits a carat.server.load v1 document.
//
// Two legs run back to back:
//
//   - steady: N concurrent sessions, each issuing R runs of its module
//     (modules are precompiled via /v1/modules and run by ref). 429s are
//     retried after the advertised backoff, so every session completes;
//     the rejection count measures how often admission control engaged.
//   - overload: a burst of one-shot requests over the server's in-flight
//     cap, no retries. This leg MUST see nonzero 429s — it is the proof
//     that admission control sheds load instead of degrading everyone.
//
// Every response's digest is checked against the first digest seen for
// its (module, seed): any divergence means the server's isolation story
// is broken, and loadgen exits nonzero.
//
//	caratd -config configs/caratd.sample.json &
//	go run ./scripts/loadgen -addr localhost:9321 -sessions 1000 -out BENCH_server.load.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	hostrt "runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type runReq struct {
	Tenant string `json:"tenant"`
	Source string `json:"source,omitempty"`
	Name   string `json:"name,omitempty"`
	Ref    string `json:"ref,omitempty"`
	Seed   int64  `json:"seed"`
}

// pauseSummary is the tenant-visible bounded-pause tail, scraped from the
// server's merged carat_runtime_pause_cycles histogram: modeled cycles per
// world-stop window across every tenant run (and the ballast service).
type pauseSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

type latencySummary struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type legResult struct {
	Name          string         `json:"name"`
	Requests      uint64         `json:"requests"` // attempts, incl. rejected + failed
	OK            uint64         `json:"ok"`
	Rejected429   uint64         `json:"rejected_429"`
	Failed        uint64         `json:"failed"`
	ThroughputRPS float64        `json:"throughput_rps"`
	LatencyMS     latencySummary `json:"latency_ms"`
	WallMS        float64        `json:"wall_ms"`
}

type loadDoc struct {
	Schema             string      `json:"schema"`
	Version            int         `json:"version"`
	Target             string      `json:"target"`
	Sessions           int         `json:"sessions"`
	RequestsPerSession int         `json:"requests_per_session"`
	Modules            int         `json:"modules"`
	Legs               []legResult `json:"legs"`
	ModuleCache        struct {
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Evictions uint64  `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"module_cache"`
	AdmissionRejections uint64 `json:"admission_rejections"`
	InvariantViolations uint64 `json:"invariant_violations"`
	DigestMismatches    uint64 `json:"digest_mismatches"`
	// PeakInflight is the server's lifetime high-water mark of concurrently
	// executing runs (carat_server_inflight_peak): >1 proves tenant
	// executions actually overlapped instead of silently serializing.
	PeakInflight uint64  `json:"peak_inflight"`
	GOMAXPROCS   int     `json:"gomaxprocs"` // loadgen-side host parallelism
	WallMS       float64 `json:"wall_ms"`
	// PauseCycles (compatible v1 addition) is present when the final
	// /metrics scrape saw any world-stop pauses.
	PauseCycles *pauseSummary `json:"pause_cycles,omitempty"`
}

// digestTable records the first digest seen per (ref, seed) and counts
// divergences.
type digestTable struct {
	mu         sync.Mutex
	first      map[string]string
	mismatches uint64
}

func (d *digestTable) check(ref string, seed int64, digest string) {
	key := fmt.Sprintf("%s/%d", ref, seed)
	d.mu.Lock()
	defer d.mu.Unlock()
	if want, ok := d.first[key]; ok {
		if want != digest {
			d.mismatches++
		}
		return
	}
	d.first[key] = digest
}

// genModule emits a deterministic CARAT-C workload for index i: heap
// buffer writes, a global accumulator table, and a printed checksum — no
// pointer values ever reach the output, so results are layout-independent.
func genModule(i int) string {
	loops := 200 + (i%5)*150
	mult := 31 + 2*(i%11)
	bufLen := 64 + (i%3)*64
	return fmt.Sprintf(`
global table: [8]int;
func main(): int {
    var buf = malloc(8 * %d);
    var s = %d;
    for (var i = 0; i < %d; i = i + 1) {
        s = (s * %d + i) & 1048575;
        buf[i %% %d] = s;
        table[s & 7] = table[s & 7] + 1;
    }
    var t = 0;
    for (var i = 0; i < %d; i = i + 1) { t = t + buf[i]; }
    for (var b = 0; b < 8; b = b + 1) { print_int(table[b]); }
    free(buf);
    print_int(t);
    return t & 65535;
}`, bufLen, i+1, loops, mult, bufLen, bufLen)
}

// heavyModule holds an in-flight slot long enough for the overload burst
// to pile up behind the admission cap.
const heavyModule = `
func main(): int {
    var s = 7;
    for (var i = 0; i < 400000; i = i + 1) {
        s = (s * 31 + i) & 1048575;
    }
    print_int(s);
    return s;
}`

func main() {
	var (
		addr     = flag.String("addr", "", "caratd address (host:port), required")
		sessions = flag.Int("sessions", 1000, "concurrent sessions in the steady leg")
		requests = flag.Int("requests", 3, "runs per session")
		mods     = flag.Int("mods", 6, "distinct modules in the mix")
		tenants  = flag.Int("tenants", 8, "distinct tenant names")
		burst    = flag.Int("burst", 192, "concurrent one-shot requests in the overload leg")
		out      = flag.String("out", "", "write the carat.server.load document here (default stdout)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		os.Exit(2)
	}
	if err := run(*addr, *sessions, *requests, *mods, *tenants, *burst, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func newClient() *http.Client {
	return &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
			MaxConnsPerHost:     512,
		},
	}
}

func run(addr string, sessions, requests, mods, tenants, burst int, out string) error {
	base := "http://" + addr
	client := newClient()
	start := time.Now()

	// Precompile the module mix (plus the heavy overload module) so the
	// steady leg exercises the run-by-ref path and the module cache.
	refs := make([]string, mods)
	for i := 0; i < mods; i++ {
		ref, err := postModule(client, base, genModule(i), fmt.Sprintf("load-%d", i))
		if err != nil {
			return fmt.Errorf("precompile module %d: %w", i, err)
		}
		refs[i] = ref
	}
	heavyRef, err := postModule(client, base, heavyModule, "load-heavy")
	if err != nil {
		return fmt.Errorf("precompile heavy module: %w", err)
	}

	digests := &digestTable{first: make(map[string]string)}

	doc := loadDoc{
		Schema:             "carat.server.load",
		Version:            1,
		Target:             base,
		Sessions:           sessions,
		RequestsPerSession: requests,
		Modules:            mods,
	}

	steady := runSteady(client, base, refs, sessions, requests, tenants, digests)
	doc.Legs = append(doc.Legs, steady)

	over := runOverload(client, base, heavyRef, burst, digests)
	doc.Legs = append(doc.Legs, over)

	if err := scrapeMetrics(client, base, &doc); err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	doc.DigestMismatches = digests.mismatches
	doc.GOMAXPROCS = hostrt.GOMAXPROCS(0)
	doc.WallMS = float64(time.Since(start).Microseconds()) / 1000

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data) //nolint:errcheck
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}

	// Hard assertions: these are the load test's pass/fail criteria.
	var failures []string
	if steady.Failed > 0 || over.Failed > 0 {
		failures = append(failures, fmt.Sprintf("%d requests failed outright", steady.Failed+over.Failed))
	}
	if steady.OK != uint64(sessions)*uint64(requests) {
		failures = append(failures, fmt.Sprintf("steady leg completed %d/%d runs", steady.OK, sessions*requests))
	}
	if over.Rejected429 == 0 {
		failures = append(failures, "overload leg saw zero 429s — admission control never engaged")
	}
	if doc.DigestMismatches > 0 {
		failures = append(failures, fmt.Sprintf("%d digest mismatches — results depended on concurrency", doc.DigestMismatches))
	}
	if doc.InvariantViolations > 0 {
		failures = append(failures, fmt.Sprintf("%d invariant violations on the server", doc.InvariantViolations))
	}
	// Concurrency assertion: with many sessions in flight the server must
	// have actually overlapped executions. A peak of 0 or 1 means every
	// run was serialized — historically this passed silently (e.g. the
	// daemon pinned to one core, or a global lock around Run).
	if sessions > 1 && doc.PeakInflight < 2 {
		failures = append(failures, fmt.Sprintf(
			"peak inflight %d with %d concurrent sessions — the server serialized every run",
			doc.PeakInflight, sessions))
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	fmt.Fprintf(os.Stderr, "loadgen: ok — %d sessions, %.0f req/s steady, %d overload 429s, cache hit rate %.3f\n",
		sessions, steady.ThroughputRPS, over.Rejected429, doc.ModuleCache.HitRate)
	return nil
}

func runSteady(client *http.Client, base string, refs []string, sessions, requests, tenants int, digests *digestTable) legResult {
	leg := legResult{Name: "steady"}
	var mu sync.Mutex
	var lats []float64
	var wg sync.WaitGroup
	legStart := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			mod := s % len(refs)
			req := runReq{
				Tenant: fmt.Sprintf("tenant-%d", s%tenants),
				Ref:    refs[mod],
				Seed:   int64(mod),
			}
			for r := 0; r < requests; r++ {
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					status, body, retryAfter, err := postRun(client, base, req)
					mu.Lock()
					leg.Requests++
					mu.Unlock()
					if err != nil || (status != 200 && status != 429) {
						mu.Lock()
						leg.Failed++
						mu.Unlock()
						return
					}
					if status == 429 {
						mu.Lock()
						leg.Rejected429++
						mu.Unlock()
						time.Sleep(backoff(retryAfter, attempt))
						continue
					}
					lat := float64(time.Since(t0).Microseconds()) / 1000
					digests.check(req.Ref, req.Seed, body.Digest)
					mu.Lock()
					leg.OK++
					lats = append(lats, lat)
					mu.Unlock()
					break
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(legStart)
	leg.WallMS = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		leg.ThroughputRPS = float64(leg.OK) / wall.Seconds()
	}
	leg.LatencyMS = summarize(lats)
	return leg
}

func runOverload(client *http.Client, base, heavyRef string, burst int, digests *digestTable) legResult {
	leg := legResult{Name: "overload"}
	var mu sync.Mutex
	var lats []float64
	var wg sync.WaitGroup
	legStart := time.Now()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := runReq{Tenant: fmt.Sprintf("burst-%d", i%4), Ref: heavyRef, Seed: 99}
			t0 := time.Now()
			status, body, _, err := postRun(client, base, req)
			lat := float64(time.Since(t0).Microseconds()) / 1000
			mu.Lock()
			defer mu.Unlock()
			leg.Requests++
			switch {
			case err != nil:
				leg.Failed++
			case status == 200:
				leg.OK++
				lats = append(lats, lat)
				digests.check(req.Ref, req.Seed, body.Digest)
			case status == 429:
				leg.Rejected429++
			default:
				leg.Failed++
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(legStart)
	leg.WallMS = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		leg.ThroughputRPS = float64(leg.OK) / wall.Seconds()
	}
	leg.LatencyMS = summarize(lats)
	return leg
}

func backoff(retryAfter string, attempt int) time.Duration {
	if sec, err := strconv.Atoi(retryAfter); err == nil && sec > 0 && attempt < 2 {
		// Honor short advertised backoffs early, then fall back to a
		// faster client-side retry so big fleets drain promptly.
		if sec > 1 {
			sec = 1
		}
		return time.Duration(sec) * 250 * time.Millisecond
	}
	d := time.Duration(2<<min(attempt, 5)) * time.Millisecond
	return d
}

type runResp struct {
	Digest string `json:"digest"`
	Error  string `json:"error"`
}

func postModule(client *http.Client, base, source, name string) (string, error) {
	body, _ := json.Marshal(map[string]any{"source": source, "name": name, "tenant": "loadgen"})
	resp, err := client.Post(base+"/v1/modules", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var doc struct {
		Ref   string `json:"ref"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	if resp.StatusCode != 200 {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, doc.Error)
	}
	return doc.Ref, nil
}

func postRun(client *http.Client, base string, req runReq) (int, runResp, string, error) {
	body, _ := json.Marshal(req)
	resp, err := client.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, runResp{}, "", err
	}
	defer resp.Body.Close()
	var doc runResp
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil && err != io.EOF {
		return resp.StatusCode, runResp{}, "", err
	}
	return resp.StatusCode, doc, resp.Header.Get("Retry-After"), nil
}

func summarize(lats []float64) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return latencySummary{P50: q(0.50), P95: q(0.95), P99: q(0.99), Max: lats[len(lats)-1]}
}

// pauseFamily is the Prometheus-mangled name of the pause histogram
// (carat.runtime.pause_cycles) whose bucket series scrapeMetrics parses.
const pauseFamily = "carat_runtime_pause_cycles"

// bucketQuantile resolves quantile p from a cumulative bucket series the
// way the server does: the upper bound of the first bucket holding the
// target rank. bounds and cums are parallel, in ascending le order.
func bucketQuantile(bounds []float64, cums []uint64, count uint64, p float64) float64 {
	if count == 0 || len(bounds) == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(count)))
	if target == 0 {
		target = 1
	}
	for i, c := range cums {
		if c >= target {
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// scrapeMetrics pulls the counters the document reports from /metrics
// (Prometheus text form; names are dot-to-underscore mangled), plus the
// pause histogram's bucket series for the tenant-visible pause tail.
func scrapeMetrics(client *http.Client, base string, doc *loadDoc) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	vals := map[string]float64{}
	var pauseBounds []float64
	var pauseCums []uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "{") {
			// The only labeled series we care about: the pause histogram's
			// cumulative buckets, in ascending le order as served.
			rest, ok := strings.CutPrefix(line, pauseFamily+`_bucket{le="`)
			if !ok {
				continue
			}
			le, val, ok := strings.Cut(rest, `"} `)
			if !ok || le == "+Inf" { // _count carries the total
				continue
			}
			bound, berr := strconv.ParseFloat(le, 64)
			cum, cerr := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
			if berr == nil && cerr == nil {
				pauseBounds = append(pauseBounds, bound)
				pauseCums = append(pauseCums, cum)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			vals[fields[0]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if count := uint64(vals[pauseFamily+"_count"]); count > 0 {
		doc.PauseCycles = &pauseSummary{
			Count: count,
			Sum:   uint64(vals[pauseFamily+"_sum"]),
			P50:   bucketQuantile(pauseBounds, pauseCums, count, 0.50),
			P95:   bucketQuantile(pauseBounds, pauseCums, count, 0.95),
			P99:   bucketQuantile(pauseBounds, pauseCums, count, 0.99),
		}
	}
	doc.ModuleCache.Hits = uint64(vals["carat_server_module_cache_hits"])
	doc.ModuleCache.Misses = uint64(vals["carat_server_module_cache_misses"])
	doc.ModuleCache.Evictions = uint64(vals["carat_server_module_cache_evictions"])
	if total := doc.ModuleCache.Hits + doc.ModuleCache.Misses; total > 0 {
		doc.ModuleCache.HitRate = float64(doc.ModuleCache.Hits) / float64(total)
	}
	doc.AdmissionRejections = uint64(vals["carat_server_admission_rejections"])
	doc.InvariantViolations = uint64(vals["carat_server_invariant_violations"])
	doc.PeakInflight = uint64(vals["carat_server_inflight_peak"])
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
