// Command benchexec runs the execution-engine microbenchmark (baseline
// dispatch vs predecoded dispatch vs predecode + guard/translation cache
// vs the closure compilation tier, with a telemetry-attached closure leg)
// and writes BENCH_exec.json (schema carat.bench.exec v3).
//
// It enforces four gates:
//
//   - the full engine (predecode+xcache) must reach -min-speedup over the
//     baseline engine (default 2.0x),
//   - the closure tier must reach -min-speedup-closure over the baseline
//     engine (default 10.0x),
//   - the closure+telemetry leg (cycle sampler plus a listening /metrics
//     server) must not lose more than -max-telemetry-overhead percent of
//     closure-tier throughput (default 5%), and
//   - when -baseline names a committed reference document, the measured
//     speedups must not regress more than -regress (default 20%) below it.
//     Speedup ratios, not absolute wall times, are compared: ratios are
//     stable across host machines, wall times are not.
//
// With -scale it instead runs the multi-core scaling benchmark (N
// concurrent processes over one shared machine at GOMAXPROCS={1,2,8},
// plus injected-abort legs) and writes BENCH_scale.json (schema
// carat.bench.scale v1), gating:
//
//   - per-process determinism: digests byte-identical across every
//     GOMAXPROCS and under injected move aborts (hard failure inside the
//     bench itself — unconditional, host-independent),
//   - aggregate 8-vs-1 speedup against -min-scale; 0 (the default) picks
//     a core-scaled floor: 3.0x with >=8 host cores (the ISSUE gate),
//     degrading on smaller hosts that physically cannot show 8-way
//     parallelism, and
//   - no >-regress regression of the speedup vs -baseline, compared only
//     when the baseline was recorded on a host with the same core class.
//
// Usage:
//
//	go run ./scripts/benchexec -out BENCH_exec.json -baseline BENCH_exec.baseline.json
//	go run ./scripts/benchexec -scale -out BENCH_scale.json -baseline BENCH_scale.baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"carat/internal/bench"
)

func main() {
	var (
		out               = flag.String("out", "BENCH_exec.json", "output path ('-' for stdout)")
		baseline          = flag.String("baseline", "", "committed reference document to gate regressions against")
		iters             = flag.Int("iters", 60, "outer-loop trip count of the bench kernel")
		reps              = flag.Int("reps", 3, "repetitions per engine (best wall time kept)")
		minSpeedup        = flag.Float64("min-speedup", 2.0, "required full-engine speedup over baseline dispatch")
		minSpeedupClosure = flag.Float64("min-speedup-closure", 10.0,
			"required closure-tier speedup over baseline dispatch")
		regress    = flag.Float64("regress", 0.20, "allowed fractional speedup regression vs -baseline")
		maxTeleOvh = flag.Float64("max-telemetry-overhead", 5.0,
			"allowed full-engine throughput loss (percent) with sampling and -http telemetry enabled")
		scale      = flag.Bool("scale", false, "run the multi-core scaling bench instead of the engine matrix")
		scaleProcs = flag.Int("procs", 8, "concurrent processes per scaling leg (with -scale)")
		scaleIters = flag.Int("scale-iters", 40, "outer-loop trip count per process (with -scale)")
		scaleReps  = flag.Int("scale-reps", 3, "repetitions per scaling leg (with -scale)")
		minScale   = flag.Float64("min-scale", 0,
			"required aggregate 8-vs-1 speedup; 0 = core-scaled floor (with -scale)")
	)
	flag.Parse()

	if *scale {
		runScale(*out, *baseline, *scaleProcs, *scaleIters, *scaleReps, *minScale, *regress)
		return
	}

	doc, err := bench.RunExecBench(*iters, *reps)
	if err != nil {
		fatal(err)
	}

	if *out == "-" {
		if err := doc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		err = doc.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}

	for _, e := range doc.Engines {
		fmt.Fprintf(os.Stderr, "benchexec: %-18s %8.1f ms  %8.2f Minstr/s\n",
			e.Engine, e.WallMS, e.MInstrsPerSec)
	}
	fmt.Fprintf(os.Stderr, "benchexec: speedup predecode=%.2fx full=%.2fx closure=%.2fx telemetry overhead=%.1f%%\n",
		doc.SpeedupPredecode, doc.SpeedupFull, doc.SpeedupClosure, doc.TelemetryOverheadPct)

	if doc.SpeedupFull < *minSpeedup {
		fatal(fmt.Errorf("full-engine speedup %.2fx below required %.2fx", doc.SpeedupFull, *minSpeedup))
	}
	if doc.SpeedupClosure < *minSpeedupClosure {
		fatal(fmt.Errorf("closure-tier speedup %.2fx below required %.2fx", doc.SpeedupClosure, *minSpeedupClosure))
	}
	if doc.TelemetryOverheadPct > *maxTeleOvh {
		fatal(fmt.Errorf("telemetry overhead %.1f%% exceeds allowed %.1f%%",
			doc.TelemetryOverheadPct, *maxTeleOvh))
	}

	if *baseline != "" {
		ref, err := readBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		floorFull := ref.SpeedupFull * (1 - *regress)
		floorPre := ref.SpeedupPredecode * (1 - *regress)
		floorClo := ref.SpeedupClosure * (1 - *regress)
		if doc.SpeedupFull < floorFull {
			fatal(fmt.Errorf("full-engine speedup %.2fx regressed >%.0f%% vs committed baseline %.2fx",
				doc.SpeedupFull, *regress*100, ref.SpeedupFull))
		}
		if doc.SpeedupPredecode < floorPre {
			fatal(fmt.Errorf("predecode speedup %.2fx regressed >%.0f%% vs committed baseline %.2fx",
				doc.SpeedupPredecode, *regress*100, ref.SpeedupPredecode))
		}
		// Pre-v3 baselines carry no closure figure; skip the floor until
		// the baseline is re-committed.
		if ref.SpeedupClosure > 0 && doc.SpeedupClosure < floorClo {
			fatal(fmt.Errorf("closure-tier speedup %.2fx regressed >%.0f%% vs committed baseline %.2fx",
				doc.SpeedupClosure, *regress*100, ref.SpeedupClosure))
		}
		fmt.Fprintf(os.Stderr, "benchexec: within %.0f%% of committed baseline (full %.2fx, predecode %.2fx, closure %.2fx)\n",
			*regress*100, ref.SpeedupFull, ref.SpeedupPredecode, ref.SpeedupClosure)
	}
}

// runScale runs the scaling bench and enforces its gates.
func runScale(out, baseline string, procs, iters, reps int, minScale, regress float64) {
	doc, err := bench.RunScaleBench(procs, iters, reps)
	if err != nil {
		fatal(err)
	}
	floor := minScale
	if floor == 0 {
		floor = bench.ScaleFloorFor(doc.UsableCPUs)
	}
	doc.MinSpeedupFloor = floor

	if err := writeDoc(out, doc.WriteJSON); err != nil {
		fatal(err)
	}

	for _, l := range doc.Legs {
		mode := "plain "
		if l.Aborts {
			mode = "aborts"
		}
		fmt.Fprintf(os.Stderr, "benchexec: scale GOMAXPROCS=%d %s %8.1f ms  %8.2f agg Minstr/s  (%d rollbacks)\n",
			l.GOMAXPROCS, mode, l.WallMS, l.AggMInstrsPerSec, l.Rollbacks)
	}
	fmt.Fprintf(os.Stderr, "benchexec: scale speedup 8v1=%.2fx on %d host cores (floor %.2fx), determinism ok\n",
		doc.SpeedupAt8, doc.UsableCPUs, floor)

	if doc.SpeedupAt8 < floor {
		fatal(fmt.Errorf("aggregate 8-vs-1 speedup %.2fx below required %.2fx (%d host cores)",
			doc.SpeedupAt8, floor, doc.UsableCPUs))
	}
	if baseline != "" {
		ref, err := readScaleBaseline(baseline)
		if err != nil {
			fatal(err)
		}
		// Speedup ratios are only comparable between hosts of the same
		// core class: a 1-core runner cannot be held to an 8-core record.
		if bench.ScaleFloorFor(ref.UsableCPUs) != bench.ScaleFloorFor(doc.UsableCPUs) {
			fmt.Fprintf(os.Stderr, "benchexec: scale baseline recorded on %d-core host, this host has %d cores; skipping regression gate\n",
				ref.UsableCPUs, doc.UsableCPUs)
			return
		}
		if floorRef := ref.SpeedupAt8 * (1 - regress); doc.SpeedupAt8 < floorRef {
			fatal(fmt.Errorf("scale speedup %.2fx regressed >%.0f%% vs committed baseline %.2fx",
				doc.SpeedupAt8, regress*100, ref.SpeedupAt8))
		}
		fmt.Fprintf(os.Stderr, "benchexec: within %.0f%% of committed scale baseline (%.2fx)\n",
			regress*100, ref.SpeedupAt8)
	}
}

// writeDoc writes via the given encoder to path, or stdout for "-".
func writeDoc(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func readScaleBaseline(path string) (*bench.ScaleBenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var doc bench.ScaleBenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if doc.Schema != bench.ScaleBenchSchema {
		return nil, fmt.Errorf("baseline %s: schema %q, want %q", path, doc.Schema, bench.ScaleBenchSchema)
	}
	return &doc, nil
}

func readBaseline(path string) (*bench.ExecBenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var doc bench.ExecBenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if doc.Schema != bench.ExecBenchSchema {
		return nil, fmt.Errorf("baseline %s: schema %q, want %q", path, doc.Schema, bench.ExecBenchSchema)
	}
	return &doc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchexec:", err)
	os.Exit(1)
}
