// Command validatejson checks that stdin (or each file argument) is valid
// JSON and, when the document carries a "schema" field, that the schema is
// one this repo produces at a supported version. The Makefile smoke target
// pipes caratbench -json output through it and points it at the files the
// telemetry endpoints serve.
//
// carat.profile documents additionally get a structural check: the folded
// stacks must reconcile with the document's own totals (see
// internal/obs/sampler.go).
//
// With -prom, each input is validated as Prometheus text exposition format
// (version 0.0.4) instead of JSON: what the /metrics telemetry endpoint
// serves.
//
// Usage:
//
//	caratbench -exp all -json | go run ./scripts/validatejson
//	go run ./scripts/validatejson trace.json metrics.json
//	go run ./scripts/validatejson -prom smoke_metrics.prom
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"carat/internal/runtime"
)

// supported maps known schema names to the highest version this tool
// understands (kept in sync with the constants in internal/obs and
// internal/bench).
var supported = map[string]int{
	"carat.bench.result":  2,
	"carat.bench.exec":    3,
	"carat.bench.scale":   1,
	"carat.vm.run":        1,
	"carat.metrics":       1,
	"carat.trace":         1,
	"carat.policy":        2,
	"carat.soak.result":   1,
	"carat.profile":       1,
	"carat.server.result": 1,
	"carat.server.load":   1,
}

func main() {
	prom := flag.Bool("prom", false, "validate Prometheus text exposition format instead of JSON")
	flag.Parse()
	check := validate
	if *prom {
		check = validateProm
	}
	if flag.NArg() == 0 {
		if err := check("stdin", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "validatejson:", err)
			os.Exit(1)
		}
		fmt.Println("stdin: ok")
		return
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "validatejson:", err)
			os.Exit(1)
		}
		err = check(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "validatejson:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", path)
	}
}

func validate(name string, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", name, err)
	}
	if doc.Schema == "" {
		return nil // plain JSON without a schema header is fine
	}
	max, ok := supported[doc.Schema]
	if !ok {
		return fmt.Errorf("%s: unknown schema %q", name, doc.Schema)
	}
	if doc.Version < 1 || doc.Version > max {
		return fmt.Errorf("%s: schema %s version %d unsupported (max %d)",
			name, doc.Schema, doc.Version, max)
	}
	if doc.Schema == "carat.profile" {
		if err := validateProfile(data); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if doc.Schema == "carat.server.load" {
		if err := validateServerLoad(data); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if doc.Schema == "carat.policy" && doc.Version >= 2 {
		if err := validatePolicy(data); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if doc.Schema == "carat.bench.exec" && doc.Version >= 3 {
		if err := validateBenchExec(data); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if doc.Schema == "carat.bench.scale" {
		if err := validateBenchScale(data); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// validateBenchScale structurally checks a carat.bench.scale v1 document:
// the leg matrix must cover GOMAXPROCS 1 and 8 in both the plain and
// injected-abort families, every leg must carry one digest per process
// with digests element-wise identical within its family (the determinism
// contract, re-checked here so a hand-edited artifact cannot claim it),
// abort legs must actually have rolled moves back, and the recorded
// speedup must agree with the plain legs' throughputs.
func validateBenchScale(data []byte) error {
	var doc struct {
		Procs int `json:"procs"`
		Legs  []struct {
			GOMAXPROCS       int      `json:"gomaxprocs"`
			Aborts           bool     `json:"aborts"`
			AggMInstrsPerSec float64  `json:"agg_minstrs_per_sec"`
			Digests          []uint64 `json:"digests"`
			Rollbacks        uint64   `json:"rollbacks"`
		} `json:"legs"`
		SpeedupAt8    float64 `json:"speedup_8v1"`
		DeterminismOK bool    `json:"determinism_ok"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("carat.bench.scale: %w", err)
	}
	if doc.Procs <= 1 {
		return fmt.Errorf("carat.bench.scale: procs must be >1")
	}
	if !doc.DeterminismOK {
		return fmt.Errorf("carat.bench.scale: determinism_ok is false")
	}
	famDigests := map[bool][]uint64{}
	covered := map[[2]interface{}]bool{}
	var thr1, thr8 float64
	for _, l := range doc.Legs {
		if len(l.Digests) != doc.Procs {
			return fmt.Errorf("carat.bench.scale: leg GOMAXPROCS=%d aborts=%v has %d digests, procs says %d",
				l.GOMAXPROCS, l.Aborts, len(l.Digests), doc.Procs)
		}
		if ref, ok := famDigests[l.Aborts]; ok {
			for j := range l.Digests {
				if l.Digests[j] != ref[j] {
					return fmt.Errorf("carat.bench.scale: digest mismatch within aborts=%v family at GOMAXPROCS=%d process %d",
						l.Aborts, l.GOMAXPROCS, j)
				}
			}
		} else {
			famDigests[l.Aborts] = l.Digests
		}
		if l.Aborts && l.Rollbacks == 0 {
			return fmt.Errorf("carat.bench.scale: abort leg GOMAXPROCS=%d rolled back no moves — injection not reaching the move path",
				l.GOMAXPROCS)
		}
		covered[[2]interface{}{l.GOMAXPROCS, l.Aborts}] = true
		if !l.Aborts && l.GOMAXPROCS == 1 {
			thr1 = l.AggMInstrsPerSec
		}
		if !l.Aborts && l.GOMAXPROCS == 8 {
			thr8 = l.AggMInstrsPerSec
		}
	}
	for _, want := range [][2]interface{}{{1, false}, {8, false}, {1, true}, {8, true}} {
		if !covered[want] {
			return fmt.Errorf("carat.bench.scale: missing leg GOMAXPROCS=%v aborts=%v", want[0], want[1])
		}
	}
	if thr1 <= 0 || thr8 <= 0 {
		return fmt.Errorf("carat.bench.scale: non-positive plain-leg throughput")
	}
	if got := thr8 / thr1; got < doc.SpeedupAt8*0.999 || got > doc.SpeedupAt8*1.001 {
		return fmt.Errorf("carat.bench.scale: speedup_8v1 %.3f disagrees with leg throughputs (%.3f)",
			doc.SpeedupAt8, got)
	}
	return nil
}

// validateBenchExec structurally checks a carat.bench.exec v3 document:
// the engine matrix must include a closure leg and a closure+telemetry
// leg, every engine must report the same modeled instruction/cycle totals
// (the engines are host-speed tiers over one model, so modeled results are
// engine-invariant by construction), closure legs must carry inline-cache
// counters, and speedup_closure must be present.
func validateBenchExec(data []byte) error {
	var doc struct {
		Engines []struct {
			Engine    string `json:"engine"`
			Closure   bool   `json:"closure"`
			Telemetry bool   `json:"telemetry"`
			Instrs    uint64 `json:"instrs"`
			Cycles    uint64 `json:"cycles"`
			ICHits    uint64 `json:"ic_hits"`
			ICMisses  uint64 `json:"ic_misses"`
		} `json:"engines"`
		SpeedupClosure float64 `json:"speedup_closure"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("carat.bench.exec: %w", err)
	}
	if len(doc.Engines) == 0 {
		return fmt.Errorf("carat.bench.exec: no engines")
	}
	var sawClosure, sawTelemetry bool
	for _, e := range doc.Engines {
		if e.Instrs != doc.Engines[0].Instrs || e.Cycles != doc.Engines[0].Cycles {
			return fmt.Errorf("carat.bench.exec: engine %q modeled (%d instrs, %d cycles) diverges from %q (%d, %d)",
				e.Engine, e.Instrs, e.Cycles, doc.Engines[0].Engine, doc.Engines[0].Instrs, doc.Engines[0].Cycles)
		}
		if e.Closure {
			sawClosure = true
			if e.ICHits == 0 && e.ICMisses == 0 {
				return fmt.Errorf("carat.bench.exec: closure engine %q reports no inline-cache activity", e.Engine)
			}
			if e.Telemetry {
				sawTelemetry = true
			}
		}
	}
	if !sawClosure {
		return fmt.Errorf("carat.bench.exec: v3 document has no closure leg")
	}
	if !sawTelemetry {
		return fmt.Errorf("carat.bench.exec: v3 document has no closure+telemetry leg")
	}
	if doc.SpeedupClosure <= 0 {
		return fmt.Errorf("carat.bench.exec: speedup_closure missing or non-positive")
	}
	return nil
}

// validatePolicy structurally checks a carat.policy v2 document: the
// first-class pause_p99_cycles column must agree with the embedded
// pause_cycles histogram (and be zero when no pauses were recorded), and
// a recorded pause budget must not have been blown (budgets below the
// minimum batch clamp to MinMoveBatch, so the enforced bound — not the
// raw budget — is what the max is held to).
func validatePolicy(data []byte) error {
	var doc struct {
		PauseP99Cycles    float64 `json:"pause_p99_cycles"`
		PauseBudgetCycles uint64  `json:"pause_budget_cycles"`
		PauseCycles       *struct {
			Count uint64  `json:"count"`
			P99   float64 `json:"p99"`
			Max   uint64  `json:"max"`
		} `json:"pause_cycles"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("carat.policy: %w", err)
	}
	if doc.PauseCycles == nil || doc.PauseCycles.Count == 0 {
		if doc.PauseP99Cycles != 0 {
			return fmt.Errorf("carat.policy: pause_p99_cycles %.0f with no recorded pauses", doc.PauseP99Cycles)
		}
		return nil
	}
	if doc.PauseP99Cycles != doc.PauseCycles.P99 {
		return fmt.Errorf("carat.policy: pause_p99_cycles %.0f disagrees with pause_cycles.p99 %.0f",
			doc.PauseP99Cycles, doc.PauseCycles.P99)
	}
	if doc.PauseBudgetCycles > 0 {
		bound := runtime.PauseBound(runtime.BatchForBudget(doc.PauseBudgetCycles))
		if doc.PauseCycles.Max > bound {
			return fmt.Errorf("carat.policy: pause max %d over the enforced bound %d (budget %d)",
				doc.PauseCycles.Max, bound, doc.PauseBudgetCycles)
		}
	}
	return nil
}

// validateServerLoad structurally checks a carat.server.load document:
// every leg's outcome counts must sum to its attempts, latency quantiles
// must be ordered, and the cache hit rate must be a valid fraction.
func validateServerLoad(data []byte) error {
	var doc struct {
		Sessions int `json:"sessions"`
		Legs     []struct {
			Name      string `json:"name"`
			Requests  uint64 `json:"requests"`
			OK        uint64 `json:"ok"`
			Rejected  uint64 `json:"rejected_429"`
			Failed    uint64 `json:"failed"`
			LatencyMS struct {
				P50 float64 `json:"p50"`
				P99 float64 `json:"p99"`
			} `json:"latency_ms"`
		} `json:"legs"`
		ModuleCache struct {
			HitRate float64 `json:"hit_rate"`
		} `json:"module_cache"`
		DigestMismatches *uint64 `json:"digest_mismatches"`
		PauseCycles      *struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
			P95   float64 `json:"p95"`
			P99   float64 `json:"p99"`
		} `json:"pause_cycles"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("carat.server.load: %w", err)
	}
	if doc.Sessions <= 0 {
		return fmt.Errorf("carat.server.load: sessions must be positive")
	}
	if len(doc.Legs) == 0 {
		return fmt.Errorf("carat.server.load: no legs")
	}
	for _, leg := range doc.Legs {
		if leg.Name == "" {
			return fmt.Errorf("carat.server.load: leg without a name")
		}
		if leg.OK+leg.Rejected+leg.Failed != leg.Requests {
			return fmt.Errorf("carat.server.load: leg %q: ok+rejected_429+failed = %d, requests says %d",
				leg.Name, leg.OK+leg.Rejected+leg.Failed, leg.Requests)
		}
		if leg.OK > 0 && leg.LatencyMS.P50 > leg.LatencyMS.P99 {
			return fmt.Errorf("carat.server.load: leg %q: p50 %.3f > p99 %.3f",
				leg.Name, leg.LatencyMS.P50, leg.LatencyMS.P99)
		}
	}
	if doc.ModuleCache.HitRate < 0 || doc.ModuleCache.HitRate > 1 {
		return fmt.Errorf("carat.server.load: hit_rate %f outside [0,1]", doc.ModuleCache.HitRate)
	}
	if doc.DigestMismatches == nil {
		return fmt.Errorf("carat.server.load: digest_mismatches missing")
	}
	if p := doc.PauseCycles; p != nil {
		if p.Count == 0 {
			return fmt.Errorf("carat.server.load: pause_cycles present with zero count")
		}
		if p.P50 > p.P95 || p.P95 > p.P99 {
			return fmt.Errorf("carat.server.load: pause quantiles unordered: p50 %.0f, p95 %.0f, p99 %.0f",
				p.P50, p.P95, p.P99)
		}
	}
	return nil
}

// validateProfile structurally checks a carat.profile document: the folded
// stacks must sum to total_samples, and so must the per-phase totals.
func validateProfile(data []byte) error {
	var doc struct {
		IntervalCycles uint64 `json:"interval_cycles"`
		Tracks         int    `json:"tracks"`
		TotalSamples   uint64 `json:"total_samples"`
		Stacks         []struct {
			Stack   string `json:"stack"`
			Phase   string `json:"phase"`
			Samples uint64 `json:"samples"`
		} `json:"stacks"`
		PhaseTotals map[string]uint64 `json:"phase_totals"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("carat.profile: %w", err)
	}
	if doc.IntervalCycles == 0 {
		return fmt.Errorf("carat.profile: interval_cycles is zero")
	}
	var stackSum uint64
	for _, s := range doc.Stacks {
		if s.Phase == "" {
			return fmt.Errorf("carat.profile: stack %q has no phase", s.Stack)
		}
		stackSum += s.Samples
	}
	if stackSum != doc.TotalSamples {
		return fmt.Errorf("carat.profile: stacks sum to %d samples, total_samples says %d",
			stackSum, doc.TotalSamples)
	}
	var phaseSum uint64
	for _, n := range doc.PhaseTotals {
		phaseSum += n
	}
	if phaseSum != doc.TotalSamples {
		return fmt.Errorf("carat.profile: phase_totals sum to %d samples, total_samples says %d",
			phaseSum, doc.TotalSamples)
	}
	return nil
}

// validateProm checks Prometheus text exposition format: every non-comment
// line must be `name[{labels}] value`, every sample must follow a # TYPE
// header for its family, and histogram families must end their bucket
// series with le="+Inf".
func validateProm(name string, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]string{} // family -> counter|gauge|histogram
	samples := 0
	lineNo := 0
	sawInf := map[string]bool{}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		metric, value, ok := splitPromSample(line)
		if !ok {
			return fmt.Errorf("%s:%d: malformed sample %q", name, lineNo, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("%s:%d: bad value %q: %v", name, lineNo, value, err)
		}
		family := metric
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			family = metric[:i]
			if metric[len(metric)-1] != '}' {
				return fmt.Errorf("%s:%d: unterminated label set in %q", name, lineNo, metric)
			}
			if strings.Contains(metric[i:], `le="+Inf"`) {
				sawInf[family] = true
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(family,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[family]; !ok {
			if _, ok := typed[base]; !ok {
				return fmt.Errorf("%s:%d: sample %q has no # TYPE header", name, lineNo, family)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	for fam, typ := range typed {
		if typ == "histogram" && !sawInf[fam+"_bucket"] {
			return fmt.Errorf("%s: histogram %s has no le=\"+Inf\" bucket", name, fam)
		}
	}
	if samples == 0 {
		return fmt.Errorf("%s: no samples", name)
	}
	return nil
}

// splitPromSample splits a sample line into metric (with any label set)
// and value, tolerating spaces inside quoted label values.
func splitPromSample(line string) (metric, value string, ok bool) {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inQuote = !inQuote
			}
		case ' ':
			if !inQuote {
				rest := strings.TrimSpace(line[i:])
				// A trailing timestamp is legal; keep only the value.
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				return line[:i], rest, rest != ""
			}
		}
	}
	return "", "", false
}
