// Command validatejson checks that stdin (or each file argument) is valid
// JSON and, when the document carries a "schema" field, that the schema is
// one this repo produces at a supported version. The Makefile smoke target
// pipes caratbench -json output through it.
//
// Usage:
//
//	caratbench -exp all -json | go run ./scripts/validatejson
//	go run ./scripts/validatejson trace.json metrics.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// supported maps known schema names to the highest version this tool
// understands (kept in sync with the constants in internal/obs and
// internal/bench).
var supported = map[string]int{
	"carat.bench.result": 2,
	"carat.bench.exec":   1,
	"carat.vm.run":       1,
	"carat.metrics":      1,
	"carat.trace":        1,
	"carat.policy":       1,
	"carat.soak.result":  1,
}

func main() {
	if len(os.Args) < 2 {
		if err := validate("stdin", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "validatejson:", err)
			os.Exit(1)
		}
		fmt.Println("stdin: ok")
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "validatejson:", err)
			os.Exit(1)
		}
		err = validate(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "validatejson:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", path)
	}
}

func validate(name string, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", name, err)
	}
	if doc.Schema == "" {
		return nil // plain JSON without a schema header is fine
	}
	max, ok := supported[doc.Schema]
	if !ok {
		return fmt.Errorf("%s: unknown schema %q", name, doc.Schema)
	}
	if doc.Version < 1 || doc.Version > max {
		return fmt.Errorf("%s: schema %s version %d unsupported (max %d)",
			name, doc.Schema, doc.Version, max)
	}
	return nil
}
